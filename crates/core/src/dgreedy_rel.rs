//! DGreedyRel (Section 5.4): DGreedyAbs's pipeline with GreedyRel at the
//! workers, minimizing maximum *relative* error under a sanity bound.
//!
//! The structure is identical to [`mod@crate::dgreedy_abs`]; the differences
//! are (i) level-1 workers run the envelope-based GreedyRel, which needs
//! the leaf values for its denominators, and (ii) the driver's residual
//! floor `ρ_k` comes from a GreedyRel run on the root sub-tree whose
//! pseudo-leaf denominators are the base-slice averages — an
//! approximation of the true per-leaf denominators, so the final error is
//! re-measured exactly by a distributed evaluation job.

use std::collections::HashMap;
use std::sync::Arc;

use dwmaxerr_algos::greedy_rel::GreedyRel;
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::partition::BasePartition;
use crate::splits::{aligned_splits, SliceSplit};

/// Tuning knobs for DGreedyRel.
#[derive(Debug, Clone)]
pub struct DGreedyRelConfig {
    /// Leaves per base sub-tree (power of two).
    pub base_leaves: usize,
    /// Relative-error bucket width `e_b`.
    pub bucket_width: f64,
    /// Level-2 workers.
    pub reducers: usize,
    /// Sanity bound `S > 0` for the relative error (Eq. 3).
    pub sanity: f64,
}

impl Default for DGreedyRelConfig {
    fn default() -> Self {
        DGreedyRelConfig {
            base_leaves: 1 << 12,
            bucket_width: 1e-9,
            reducers: 4,
            sanity: 1.0,
        }
    }
}

/// Result of a DGreedyRel run.
#[derive(Debug, Clone)]
pub struct DGreedyRelResult {
    /// The synopsis.
    pub synopsis: Synopsis,
    /// Exact max relative error, measured by a distributed evaluation job.
    pub error: f64,
    /// `|C_root|` of the winning candidate.
    pub best_croot_size: usize,
    /// Pipeline metrics.
    pub metrics: DriverMetrics,
}

struct Broadcast {
    partition: BasePartition,
    root_coeffs: Vec<f64>,
    removal_order: Vec<usize>,
    max_k: usize,
    bucket_width: f64,
    sanity: f64,
}

impl Broadcast {
    fn removed_under(&self, k: usize) -> &[usize] {
        &self.removal_order[..self.removal_order.len() - k]
    }
    fn retained_under(&self, k: usize) -> &[usize] {
        &self.removal_order[self.removal_order.len() - k..]
    }
    fn bucket(&self, error: f64) -> i64 {
        (error / self.bucket_width).floor() as i64
    }
}

fn histogram_batches(trace: &[dwmaxerr_algos::Removal], bc: &Broadcast) -> Vec<(i64, u32)> {
    let mut out = Vec::new();
    let mut max_bucket = i64::MIN;
    let mut count = 0u32;
    for r in trace {
        let b = bc.bucket(r.error_after);
        if b <= max_bucket {
            count += 1;
        } else {
            if count > 0 {
                out.push((max_bucket, count));
            }
            max_bucket = b;
            count = 1;
        }
    }
    if count > 0 {
        out.push((max_bucket, count));
    }
    out
}

/// Distributed max-rel evaluation (the relative-error sibling of
/// [`crate::dmin_haar_space::distributed_max_abs`]).
pub fn distributed_max_rel(
    cluster: &Cluster,
    splits: &[SliceSplit],
    synopsis: &Synopsis,
    sanity: f64,
) -> Result<(f64, dwmaxerr_runtime::JobMetrics), CoreError> {
    let syn = Arc::new(synopsis.clone());
    let out = JobBuilder::new("eval-max-rel")
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u8, f64>| {
            let mut local_max = 0.0f64;
            for (off, &d) in split.slice().iter().enumerate() {
                let approx = syn.reconstruct_value(split.start() + off);
                local_max = local_max.max((approx - d).abs() / d.abs().max(sanity));
            }
            ctx.emit(0, local_max);
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|_k, vals, ctx: &mut ReduceContext<u8, f64>| {
            ctx.emit(0, vals.fold(0.0, f64::max));
        })
        .run(cluster, splits)?;
    let err = out
        .pairs
        .first()
        .map(|&(_, e)| e)
        .ok_or(CoreError::Protocol("evaluation job produced no output"))?;
    Ok((err, out.metrics))
}

/// Runs DGreedyRel over `data` with budget `b`.
pub fn dgreedy_rel(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    cfg: &DGreedyRelConfig,
) -> Result<DGreedyRelResult, CoreError> {
    let n = data.len();
    let partition = BasePartition::new(n, cfg.base_leaves.min(n))?;
    if cfg.bucket_width.is_nan()
        || cfg.bucket_width <= 0.0
        || cfg.sanity.is_nan()
        || cfg.sanity <= 0.0
    {
        return Err(CoreError::Protocol(
            "bucket_width and sanity must be positive",
        ));
    }
    let splits = aligned_splits(data, partition.base_leaves());

    // ---- Job 0: averages -> root coefficients ----
    let avg_job = JobBuilder::new("dgreedyrel-averages")
        .map(|split: &SliceSplit, ctx: &mut MapContext<u32, f64>| {
            let avg = split.slice().iter().sum::<f64>() / split.len() as f64;
            ctx.emit(split.id, avg);
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u32, f64>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let pipe = Pipeline::on(cluster)
        .stage(&avg_job, &splits)?
        .then(|(_, pairs)| {
            let mut averages = vec![0.0; partition.num_base()];
            for (j, avg) in pairs {
                averages[j as usize] = avg;
            }
            let root_coeffs = partition.root_coeffs_from_averages(&averages);
            (averages, root_coeffs)
        });
    let (averages, root_coeffs) = pipe.value().clone();

    // ---- genRootSets with GreedyRel over the averages ----
    let r = partition.num_base();
    let mut root_greedy = GreedyRel::new_full(&root_coeffs, &averages, cfg.sanity)?;
    let root_trace = root_greedy.run_to_empty();
    let removal_order: Vec<usize> = root_trace.iter().map(|t| t.node as usize).collect();
    let max_k = r.min(b);

    let bc = Arc::new(Broadcast {
        partition,
        root_coeffs: root_coeffs.clone(),
        removal_order,
        max_k,
        bucket_width: cfg.bucket_width,
        sanity: cfg.sanity,
    });

    // ---- Job 1: ErrHistGreedyRel + combineResults ----
    let bc1 = Arc::clone(&bc);
    let hist_job = JobBuilder::new("dgreedyrel-errhist")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u32, (i64, u32)>| {
                let bc = &bc1;
                let (details, _avg) = bc.partition.base_details_from_data(split.slice());
                let j = split.id as usize;
                let mut by_err: HashMap<u64, (f64, Vec<u32>)> = HashMap::new();
                for k in 0..=bc.max_k {
                    let e = bc
                        .partition
                        .incoming_error(&bc.root_coeffs, bc.removed_under(k), j);
                    by_err
                        .entry(e.to_bits())
                        .or_insert_with(|| (e, Vec::new()))
                        .1
                        .push(k as u32);
                }
                for (_, (e, ks)) in by_err {
                    let mut g = GreedyRel::new_subtree(&details, split.slice(), e, bc.sanity)
                        .expect("valid subtree");
                    // The *floor*: the relative error this sub-tree already
                    // carries from deleted root nodes, before any local
                    // removal. Unlike the absolute case (where the driver's
                    // root-run gives it exactly), relative floors depend on
                    // per-leaf denominators only the worker knows — emitted as
                    // a count-0 histogram record.
                    let floor = g.current_error();
                    let trace = g.run_to_empty();
                    let batches = histogram_batches(&trace, bc);
                    for &k in &ks {
                        ctx.emit(k, (bc.bucket(floor), 0));
                        for &(bucket, count) in &batches {
                            ctx.emit(k, (bucket, count));
                        }
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .task_memory(|s: &SliceSplit| dwmaxerr_algos::memory::greedy_rel_bytes(s.len(), 8))
        .reducers(cfg.reducers)
        .partition_by(|k: &u32, parts| *k as usize % parts)
        .reduce(
            move |k: &u32, vals, ctx: &mut ReduceContext<u32, (f64, f64)>| {
                // combineResults with floors: count-0 records bound the error
                // from below (a sub-tree keeping all its nodes still carries
                // its incoming-error floor); counted records drive the cut.
                let mut batches: Vec<(i64, u32)> = vals.collect();
                batches.sort_unstable_by_key(|&(bucket, _)| std::cmp::Reverse(bucket));
                let keep = (b - *k as usize) as u64;
                let mut cum = 0u64;
                let mut cut = f64::MIN;
                let mut floor = f64::MIN;
                for (bucket, count) in batches {
                    if count == 0 {
                        floor = floor.max(bucket as f64);
                        continue;
                    }
                    if cut == f64::MIN && cum + u64::from(count) > keep {
                        cut = bucket as f64;
                    }
                    cum += u64::from(count);
                }
                let estimate = cut.max(floor).max(0.0);
                ctx.emit(*k, (cut, estimate));
            },
        );
    let pipe = pipe
        .stage(&hist_job, &splits)?
        .try_then(|(_, pairs)| -> Result<_, CoreError> {
            let mut best_k = 0usize;
            let mut best_score = f64::INFINITY;
            let mut best_cut = f64::MIN;
            for (k, (cut, estimate)) in pairs {
                let score = estimate * cfg.bucket_width;
                if score < best_score {
                    best_score = score;
                    best_k = k as usize;
                    best_cut = cut;
                }
            }
            if !best_score.is_finite() {
                return Err(CoreError::Protocol("no candidate produced a cut"));
            }
            Ok((best_k, best_cut))
        })?;
    let (best_k, best_cut) = *pipe.value();

    // ---- Job 2: emit actual nodes for the winning C_root ----
    let bc2 = Arc::clone(&bc);
    let cut_bucket = if best_cut == f64::MIN {
        i64::MIN
    } else {
        best_cut as i64
    };
    let keep_base = b - best_k;
    let syn_job = JobBuilder::new("dgreedyrel-synopsis")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u8, (i64, u32, u32, f64)>| {
                let bc = &bc2;
                let (details, _avg) = bc.partition.base_details_from_data(split.slice());
                let j = split.id as usize;
                let e = bc
                    .partition
                    .incoming_error(&bc.root_coeffs, bc.removed_under(best_k), j);
                let mut g = GreedyRel::new_subtree(&details, split.slice(), e, bc.sanity)
                    .expect("valid subtree");
                let trace = g.run_to_empty();
                let mut max_bucket = i64::MIN;
                for (idx, rem) in trace.iter().enumerate() {
                    max_bucket = max_bucket.max(bc.bucket(rem.error_after));
                    if max_bucket >= cut_bucket.saturating_sub(1) {
                        let global = bc.partition.local_to_global(j, rem.node as usize);
                        let coeff = details[rem.node as usize - 1];
                        ctx.emit(0, (max_bucket, idx as u32, global as u32, coeff));
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(move |_k: &u8, vals, ctx: &mut ReduceContext<u32, f64>| {
            let mut nodes: Vec<(i64, u32, u32, f64)> = vals.collect();
            nodes.sort_unstable_by_key(|&(bucket, idx, _, _)| std::cmp::Reverse((bucket, idx)));
            for (_, _, node, coeff) in nodes.into_iter().take(keep_base) {
                ctx.emit(node, coeff);
            }
        });
    let pipe = pipe
        .stage(&syn_job, &splits)?
        .try_then(|(_, pairs)| -> Result<_, CoreError> {
            let mut entries: Vec<(u32, f64)> = bc
                .retained_under(best_k)
                .iter()
                .map(|&a| (a as u32, root_coeffs[a]))
                .collect();
            entries.extend(pairs);
            Ok(Synopsis::from_entries(n, entries)?)
        })?;

    let (error, eval_metrics) =
        distributed_max_rel(pipe.cluster(), &splits, pipe.value(), cfg.sanity)?;
    let (synopsis, metrics) = pipe.record(eval_metrics).finish();

    Ok(DGreedyRelResult {
        synopsis,
        error,
        best_croot_size: best_k,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::greedy_rel::greedy_rel_synopsis;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::metrics::max_rel;
    use dwmaxerr_wavelet::transform::forward;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    fn run(data: &[f64], b: usize, s: usize) -> DGreedyRelResult {
        let cfg = DGreedyRelConfig {
            base_leaves: s,
            bucket_width: 1e-9,
            reducers: 2,
            sanity: 1.0,
        };
        dgreedy_rel(&test_cluster(), data, b, &cfg).unwrap()
    }

    #[test]
    fn error_report_is_exact_and_budget_respected() {
        let data: Vec<f64> = (0..64)
            .map(|i| {
                if i % 9 == 0 {
                    800.0
                } else {
                    1.0 + (i % 5) as f64
                }
            })
            .collect();
        for (b, s) in [(8usize, 8usize), (16, 16), (6, 4)] {
            let d = run(&data, b, s);
            assert!(d.synopsis.size() <= b, "b={b}");
            let actual = max_rel(&data, &d.synopsis.reconstruct_all(), 1.0);
            assert!((actual - d.error).abs() < 1e-9, "b={b} s={s}");
        }
    }

    #[test]
    fn competitive_with_centralized_greedy_rel() {
        // Note: the histogram batching keys removals by the *running max*
        // error (Algorithm 3), so the distributed scheme cannot represent
        // "keep fewer than B" states; on degenerate data where the empty
        // synopsis is optimal it loses to centralized best-of-last-B+1.
        // On realistic series — the paper's experimental regime — it
        // matches or beats the centralized heuristic.
        let spiky: Vec<f64> = (0..32)
            .map(|i| {
                if i == 13 {
                    200.0
                } else {
                    10.0 + (i % 4) as f64
                }
            })
            .collect();
        let walk: Vec<f64> = (0..64)
            .map(|i| 20.0 + (i as f64 * 0.7).sin() * 8.0)
            .collect();
        for (data, b) in [
            (&spiky, 8usize),
            (&spiky, 16),
            (&walk, 4),
            (&walk, 8),
            (&walk, 16),
        ] {
            let w = forward(data).unwrap();
            let d = run(data, b, 8);
            let (_, central) = greedy_rel_synopsis(&w, data, b, 1.0).unwrap();
            assert!(
                d.error <= central * 1.05 + 1e-9,
                "b={b}: distributed {} vs centralized {central}",
                d.error
            );
        }
    }

    #[test]
    fn full_budget_near_lossless() {
        let data: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0) * 2.0).collect();
        let d = run(&data, 16, 4);
        assert!(d.error < 1e-9, "error {}", d.error);
    }
}
