//! Progressive synopsis maintenance: sliding windows, incremental
//! rebuilds, and the phased foreground/background serving driver.
//!
//! The batch algorithms in this crate answer "build the best synopsis of
//! this array" in one monolithic run. A serving system instead sees a
//! stream of appends and needs a coarse answer *now* plus the exact
//! DGreedyAbs answer as a background upgrade — and when only a sliver of
//! the window changed, it should not pay for a full rebuild. This module
//! provides that machinery on top of the runtime's phased pipelines
//! ([`Pipeline::enter_phase`], [`Progressive`] snapshot handles) and the
//! wavelet layer's dirty-subtree tracking ([`DirtySet`]):
//!
//! * [`StreamWindow`] — a power-of-two window over the stream, organized
//!   as a ring of base slices with a zero-padded ragged tail, tracking
//!   which base sub-trees each append invalidated.
//! * [`IncrementalConventional`] — maintains the CON (L2-optimal)
//!   synopsis under appends: only dirty bases re-run their local
//!   transform job, the driver recombines with cached per-base partials.
//!   Bit-identical to a from-scratch [`crate::conventional::con`] run.
//! * [`IncrementalDGreedyAbs`] — maintains the exact max-abs synopsis:
//!   per-base histogram/trace caches keyed by the incoming error's bits
//!   mean merge/filter jobs re-run only for bases whose cached partials
//!   no longer apply; the root recombination (candidate cuts, best-`k`
//!   pick, final top-`B` filter) reuses unchanged partials driver-side.
//!   Bit-identical to a from-scratch [`crate::dgreedy_abs::dgreedy_abs`]
//!   run.
//! * [`PhasedSynopsisDriver`] — ties it together: each
//!   [`tick`](PhasedSynopsisDriver::tick) appends new values, publishes
//!   the cheap conventional answer as a foreground snapshot, then runs
//!   the exact incremental DGreedyAbs as a background phase and swaps the
//!   refined snapshot into the same [`Progressive`] handle.
//!
//! # Why the incremental results are bit-identical
//!
//! Every cached partial is the output of the *same* floating-point
//! computation the batch job would run on the same input bits: base
//! averages and local Haar details depend only on the (unchanged) base
//! slice, and a GreedyAbs error-histogram run depends only on
//! `(details, incoming error)` — the cache key. Driver-side
//! recombination replays the exact reduce-side code: the candidate cut is
//! a function of the batch *multiset* (ties share a bucket), the best-`k`
//! pick uses the canonical lower-`k` tie-break, and the final top-`B`
//! filter re-sorts the per-base emissions concatenated in base order —
//! which is precisely the order the sort-merge shuffle feeds a reducer
//! (equal keys drain lowest-map-task-first).

use std::collections::HashMap;
use std::sync::Arc;

use dwmaxerr_algos::greedy_abs::GreedyAbs;
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{
    Cluster, JobBuilder, MapContext, Phase, Pipeline, Progressive, ReduceContext, Snapshot,
};
use dwmaxerr_wavelet::metrics::max_abs;
use dwmaxerr_wavelet::tree::DirtySet;
use dwmaxerr_wavelet::{Synopsis, WaveletError};

use crate::dgreedy_abs::{bucket_of, histogram_batches, DGreedyAbsConfig};
use crate::error::CoreError;
use crate::partition::BasePartition;
use crate::splits::{aligned_splits, SliceSplit};

// ---------------------------------------------------------------------------
// StreamWindow
// ---------------------------------------------------------------------------

/// A fixed-capacity window over an append-only stream, stored as a ring
/// of base slices.
///
/// The physical array always has power-of-two length `n`; while fewer
/// than `n` values have arrived the tail is zero-filled (a *ragged
/// tail*), and once full each new value overwrites the oldest physical
/// slot. Synopses are built over the **physical** layout — the ring
/// never shifts data, so an append of `m` values dirties only the
/// `O(m / base_leaves + 1)` base sub-trees it touches, which is what
/// makes incremental maintenance cheap. The dirty set is keyed by
/// subtree root node id (`num_base + j`), matching
/// [`dwmaxerr_wavelet::IncrementalTree`].
#[derive(Debug, Clone)]
pub struct StreamWindow {
    data: Vec<f64>,
    base_leaves: usize,
    num_base: usize,
    pushed: u64,
    dirty: DirtySet,
}

impl StreamWindow {
    /// Creates an empty (zero-filled) window of `n` values partitioned
    /// into base slices of `base_leaves` values. Both must be powers of
    /// two with `2 <= base_leaves <= n`.
    pub fn new(n: usize, base_leaves: usize) -> Result<Self, WaveletError> {
        // Reuse the partition validation: same shape constraints.
        let partition = BasePartition::new(n, base_leaves)?;
        Ok(StreamWindow {
            data: vec![0.0; n],
            base_leaves,
            num_base: partition.num_base(),
            pushed: 0,
            dirty: DirtySet::new(),
        })
    }

    /// Window capacity `n`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: windows have at least two slots.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Values per base slice.
    pub fn base_leaves(&self) -> usize {
        self.base_leaves
    }

    /// Number of base slices.
    pub fn num_base(&self) -> usize {
        self.num_base
    }

    /// Stream values seen so far (monotone; exceeds `len()` once the
    /// window slides).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Values currently resident (equals `len()` once full).
    pub fn filled(&self) -> usize {
        (self.pushed.min(self.data.len() as u64)) as usize
    }

    /// True once every slot holds stream data (no ragged tail left).
    pub fn is_full(&self) -> bool {
        self.pushed >= self.data.len() as u64
    }

    /// The physical window contents (zero-padded while not full).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Appends `values`: fills the ragged tail first, then slides by
    /// overwriting the oldest slots in ring order. Every touched base
    /// slice is marked dirty.
    pub fn push(&mut self, values: &[f64]) {
        let n = self.data.len() as u64;
        for &v in values {
            let pos = (self.pushed % n) as usize;
            self.data[pos] = v;
            let root = self.num_base + pos / self.base_leaves;
            self.dirty.mark(root);
            self.pushed += 1;
        }
    }

    /// The pending dirty subtree roots.
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Drains the dirty set, returning the stale **base indices** in
    /// ascending order.
    pub fn take_dirty_bases(&mut self) -> Vec<usize> {
        self.dirty
            .drain()
            .into_iter()
            .map(|root| root - self.num_base)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Incremental CON
// ---------------------------------------------------------------------------

/// Per-update statistics of an incremental rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Stale bases this update had to reprocess.
    pub dirty_bases: usize,
    /// Map tasks executed across all jobs of the update.
    pub map_tasks: usize,
    /// GreedyAbs runs executed by those tasks (0 for conventional).
    pub greedy_runs: usize,
}

/// Outcome of [`IncrementalConventional::update`].
#[derive(Debug, Clone)]
pub struct ConventionalUpdate {
    /// The maintained conventional synopsis.
    pub synopsis: Synopsis,
    /// What the update re-ran.
    pub stats: RebuildStats,
}

/// Incrementally maintained CON (conventional / L2-optimal) synopsis.
///
/// Caches each base's local-transform output — its `(global node,
/// coefficient)` pairs and slice average. An update re-runs the transform
/// job only over invalidated bases and recombines driver-side with
/// [`crate::conventional`]'s order-independent top-`B` selection, so the
/// result is bit-identical to a from-scratch [`crate::conventional::con`]
/// run on the same array.
#[derive(Debug)]
pub struct IncrementalConventional {
    partition: BasePartition,
    b: usize,
    averages: Vec<f64>,
    details: Vec<Vec<(u64, f64)>>,
    dirty: DirtySet,
}

impl IncrementalConventional {
    /// Creates the maintainer for `n`-value windows with budget `b` and
    /// the given base slice size. Every base starts invalidated.
    pub fn new(n: usize, b: usize, base_leaves: usize) -> Result<Self, CoreError> {
        let partition = BasePartition::new(n, base_leaves.clamp(2, n))?;
        let r = partition.num_base();
        let mut this = IncrementalConventional {
            partition,
            b,
            averages: vec![0.0; r],
            details: vec![Vec::new(); r],
            dirty: DirtySet::new(),
        };
        this.invalidate_all();
        Ok(this)
    }

    /// The synopsis budget.
    pub fn budget(&self) -> usize {
        self.b
    }

    /// The window partition.
    pub fn partition(&self) -> BasePartition {
        self.partition
    }

    /// Marks base `j`'s cached partials stale.
    pub fn invalidate(&mut self, j: usize) {
        self.dirty.mark(self.partition.base_root(j));
    }

    /// Marks every base stale (forces a full rebuild on the next update).
    pub fn invalidate_all(&mut self) {
        for j in 0..self.partition.num_base() {
            self.invalidate(j);
        }
    }

    /// Rebuilds the synopsis of `data`, re-running the local-transform job
    /// only over invalidated bases. The pipeline threads through so the
    /// stage lands in the caller's phase and metrics ledger.
    pub fn update<'c>(
        &mut self,
        pipe: Pipeline<'c, ()>,
        data: &[f64],
    ) -> Result<(Pipeline<'c, ()>, ConventionalUpdate), CoreError> {
        let n = data.len();
        if n != self.partition.n() {
            return Err(CoreError::Protocol("window length changed between updates"));
        }
        let stale_bases: Vec<usize> = self
            .dirty
            .drain()
            .into_iter()
            .map(|root| root - self.partition.num_base())
            .collect();
        let part = self.partition;
        let num_base = part.num_base() as u64;

        let mut captured: Vec<(u64, f64)> = Vec::new();
        let pipe = if stale_bases.is_empty() {
            pipe
        } else {
            let splits = aligned_splits(data, part.base_leaves());
            let stale: Vec<SliceSplit> = stale_bases.iter().map(|&j| splits[j].clone()).collect();
            let job = JobBuilder::new("con-inc")
                .map(move |split: &SliceSplit, ctx: &mut MapContext<u64, f64>| {
                    // Same emissions as the batch CON mapper: every detail
                    // coefficient on its global node id, the slice average
                    // on the reserved key < R.
                    let (details, avg) = part.base_details_from_data(split.slice());
                    for (local, &c) in details.iter().enumerate() {
                        let global = part.local_to_global(split.id as usize, local + 1);
                        ctx.emit(global as u64, c);
                    }
                    ctx.emit(split.id as u64, avg);
                })
                .input_bytes(SliceSplit::bytes)
                .reduce(|k, vals, ctx: &mut ReduceContext<u64, f64>| {
                    for v in vals {
                        ctx.emit(*k, v);
                    }
                });
            pipe.stage(&job, &stale)?.then(|(_, pairs)| {
                captured = pairs;
            })
        };

        // Replace the stale bases' cached partials.
        for &j in &stale_bases {
            self.details[j].clear();
        }
        for (k, v) in captured {
            if k < num_base {
                self.averages[k as usize] = v;
            } else {
                self.details[part.owner_of(k as usize)].push((k, v));
            }
        }

        // Driver-side recombination: cached partials + fresh ones feed the
        // same order-independent top-B selection the batch reducer uses.
        let root = part.root_coeffs_from_averages(&self.averages);
        let mut coeff_pairs: Vec<(u64, f64)> = Vec::with_capacity(n);
        for list in &self.details {
            coeff_pairs.extend_from_slice(list);
        }
        coeff_pairs.extend(root.iter().enumerate().map(|(i, &c)| (i as u64, c)));
        let entries = crate::conventional::top_b_by_normalized(coeff_pairs, n, self.b);
        let synopsis = Synopsis::from_entries(n, entries)?;
        let update = ConventionalUpdate {
            synopsis,
            stats: RebuildStats {
                dirty_bases: stale_bases.len(),
                map_tasks: stale_bases.len(),
                greedy_runs: 0,
            },
        };
        Ok((pipe, update))
    }
}

// ---------------------------------------------------------------------------
// Incremental DGreedyAbs
// ---------------------------------------------------------------------------

/// Outcome of [`IncrementalDGreedyAbs::update`].
#[derive(Debug, Clone)]
pub struct DGreedyAbsUpdate {
    /// The maintained exact max-abs synopsis.
    pub synopsis: Synopsis,
    /// The guaranteed max-abs error (exact up to bucket width).
    pub estimated_error: f64,
    /// `|C_root|` of the winning candidate.
    pub best_croot_size: usize,
    /// What the update re-ran.
    pub stats: RebuildStats,
}

/// Full per-removal emission of a synopsis-phase GreedyAbs run:
/// `(running-max bucket, removal index, global node, coefficient)`.
type SynTraceEntry = (i64, u32, u32, f64);

/// Per-base cache keyed by the incoming error's f64 bits.
type ErrKeyed<T> = Vec<HashMap<u64, Arc<Vec<T>>>>;

/// Incrementally maintained DGreedyAbs synopsis.
///
/// Two caches per base, both keyed by the incoming error's f64 bits:
///
/// * **histogram cache** — the `(bucket, count)` batches of one
///   ErrHistGreedyAbs run, reused by the driver-side `combineResults`
///   replay for every candidate whose incoming error is unchanged;
/// * **trace cache** — the *unfiltered* synopsis-phase removal trace
///   (running-max bucket, index, node, coefficient), re-filterable for
///   any winning cut without re-running the job.
///
/// An update re-runs map tasks only for bases with at least one cache
/// miss; everything else is root recombination on cached partials. The
/// result is bit-identical to [`crate::dgreedy_abs::dgreedy_abs`] on the
/// same array (see the module docs for the argument). Caches are never
/// evicted — for the window sizes this simulation targets the bounded
/// number of distinct incoming errors per base (`log R + 2` per root
/// configuration) keeps them small.
#[derive(Debug)]
pub struct IncrementalDGreedyAbs {
    partition: BasePartition,
    b: usize,
    cfg: DGreedyAbsConfig,
    averages: Vec<f64>,
    hist_cache: ErrKeyed<(i64, u32)>,
    trace_cache: ErrKeyed<SynTraceEntry>,
    dirty: DirtySet,
}

impl IncrementalDGreedyAbs {
    /// Creates the maintainer for `n`-value windows with budget `b`.
    /// Every base starts invalidated.
    pub fn new(n: usize, b: usize, cfg: &DGreedyAbsConfig) -> Result<Self, CoreError> {
        let partition = BasePartition::new(n, cfg.base_leaves.min(n))?;
        if cfg.bucket_width.is_nan() || cfg.bucket_width <= 0.0 {
            return Err(CoreError::Protocol("bucket_width must be positive"));
        }
        let r = partition.num_base();
        let mut this = IncrementalDGreedyAbs {
            partition,
            b,
            cfg: cfg.clone(),
            averages: vec![0.0; r],
            hist_cache: vec![HashMap::new(); r],
            trace_cache: vec![HashMap::new(); r],
            dirty: DirtySet::new(),
        };
        this.invalidate_all();
        Ok(this)
    }

    /// The synopsis budget.
    pub fn budget(&self) -> usize {
        self.b
    }

    /// The window partition.
    pub fn partition(&self) -> BasePartition {
        self.partition
    }

    /// Marks base `j`'s cached partials stale.
    pub fn invalidate(&mut self, j: usize) {
        self.dirty.mark(self.partition.base_root(j));
    }

    /// Marks every base stale (forces a full rebuild on the next update).
    pub fn invalidate_all(&mut self) {
        for j in 0..self.partition.num_base() {
            self.invalidate(j);
        }
    }

    /// Rebuilds the synopsis of `data`, re-running merge/filter jobs only
    /// over bases whose cached partials no longer apply.
    pub fn update<'c>(
        &mut self,
        pipe: Pipeline<'c, ()>,
        data: &[f64],
    ) -> Result<(Pipeline<'c, ()>, DGreedyAbsUpdate), CoreError> {
        let n = data.len();
        if n != self.partition.n() {
            return Err(CoreError::Protocol("window length changed between updates"));
        }
        let part = self.partition;
        let r = part.num_base();
        let width = self.cfg.bucket_width;
        let b = self.b;
        let stale_bases: Vec<usize> = self
            .dirty
            .drain()
            .into_iter()
            .map(|root| root - r)
            .collect();
        for &j in &stale_bases {
            self.hist_cache[j].clear();
            self.trace_cache[j].clear();
        }
        let splits = aligned_splits(data, part.base_leaves());
        let mut stats = RebuildStats {
            dirty_bases: stale_bases.len(),
            map_tasks: 0,
            greedy_runs: 0,
        };

        // ---- Stage 1: base averages, dirty bases only ----
        let mut avg_pairs: Vec<(u32, f64)> = Vec::new();
        let pipe = if stale_bases.is_empty() {
            pipe
        } else {
            let stale: Vec<SliceSplit> = stale_bases.iter().map(|&j| splits[j].clone()).collect();
            stats.map_tasks += stale.len();
            let job = JobBuilder::new("dgreedyabs-inc-averages")
                .map(|split: &SliceSplit, ctx: &mut MapContext<u32, f64>| {
                    let avg = split.slice().iter().sum::<f64>() / split.len() as f64;
                    ctx.emit(split.id, avg);
                })
                .input_bytes(SliceSplit::bytes)
                .reduce(|k, vals, ctx: &mut ReduceContext<u32, f64>| {
                    for v in vals {
                        ctx.emit(*k, v);
                    }
                });
            pipe.stage(&job, &stale)?.then(|(_, pairs)| {
                avg_pairs = pairs;
            })
        };
        for (j, avg) in avg_pairs {
            self.averages[j as usize] = avg;
        }

        // ---- genRootSets on the (partially cached) averages ----
        let root_coeffs = part.root_coeffs_from_averages(&self.averages);
        let mut root_greedy = GreedyAbs::new_full(&root_coeffs)?;
        let root_trace = root_greedy.run_to_empty();
        let removal_order: Vec<usize> = root_trace.iter().map(|t| t.node as usize).collect();
        let max_k = r.min(b).min(self.cfg.max_candidates.unwrap_or(usize::MAX));
        let rho: Vec<f64> = (0..=max_k)
            .map(|k| {
                let removed = r - k;
                if removed == 0 {
                    0.0
                } else {
                    root_trace[removed - 1].error_after
                }
            })
            .collect();
        let removed_under = |k: usize| &removal_order[..removal_order.len() - k];
        let retained_under = |k: usize| &removal_order[removal_order.len() - k..];

        // ---- Which incoming errors does each base need this round? ----
        // Distinct values in candidate order, exactly like the batch
        // mapper's by_err grouping (at most log R + 2 per base).
        let mut needed: Vec<Vec<f64>> = vec![Vec::new(); r];
        for (j, need) in needed.iter_mut().enumerate() {
            for k in 0..=max_k {
                let e = part.incoming_error(&root_coeffs, removed_under(k), j);
                if !need.iter().any(|&seen: &f64| seen.to_bits() == e.to_bits()) {
                    need.push(e);
                }
            }
        }

        // ---- Stage 2: histogram runs for cache misses only ----
        let missing: Vec<Vec<f64>> = needed
            .iter()
            .enumerate()
            .map(|(j, need)| {
                need.iter()
                    .copied()
                    .filter(|e| !self.hist_cache[j].contains_key(&e.to_bits()))
                    .collect()
            })
            .collect();
        let hist_stale: Vec<SliceSplit> = (0..r)
            .filter(|&j| !missing[j].is_empty())
            .map(|j| splits[j].clone())
            .collect();
        let mut hist_pairs: Vec<(u32, (u64, i64, u32))> = Vec::new();
        let pipe = if hist_stale.is_empty() {
            pipe
        } else {
            stats.map_tasks += hist_stale.len();
            stats.greedy_runs += missing.iter().map(Vec::len).sum::<usize>();
            let miss_bc = Arc::new(missing.clone());
            let job = JobBuilder::new("dgreedyabs-inc-errhist")
                .map(
                    move |split: &SliceSplit, ctx: &mut MapContext<u32, (u64, i64, u32)>| {
                        let j = split.id as usize;
                        let (details, _avg) = part.base_details_from_data(split.slice());
                        for &e in &miss_bc[j] {
                            let mut g = GreedyAbs::new_subtree(&details, e).expect("valid subtree");
                            let trace = g.run_to_empty();
                            ctx.add_counter("greedy_runs", 1);
                            for &(bucket, count) in &histogram_batches(&trace, width) {
                                ctx.emit(j as u32, (e.to_bits(), bucket, count));
                            }
                        }
                    },
                )
                .input_bytes(SliceSplit::bytes)
                .task_memory(|s: &SliceSplit| dwmaxerr_algos::memory::greedy_abs_bytes(s.len()))
                .reducers(self.cfg.reducers)
                .partition_by(|k: &u32, parts| *k as usize % parts)
                .reduce(
                    |k: &u32, vals, ctx: &mut ReduceContext<u32, (u64, i64, u32)>| {
                        for v in vals {
                            ctx.emit(*k, v);
                        }
                    },
                );
            pipe.stage(&job, &hist_stale)?.then(|(_, pairs)| {
                hist_pairs = pairs;
            })
        };
        // Batches for one (base, error) arrive contiguously in emission
        // order (the merge drains equal keys lowest-map-task-first and
        // each base is one task).
        for (j, (e_bits, bucket, count)) in hist_pairs {
            Arc::make_mut(
                self.hist_cache[j as usize]
                    .entry(e_bits)
                    .or_insert_with(|| Arc::new(Vec::new())),
            )
            .push((bucket, count));
        }

        // ---- combineResults replay on cached partials ----
        // Exact replica of the batch reducer: per candidate, gather every
        // base's batches, sort by bucket descending, read the error at the
        // B - k cut. The cut is a function of the multiset, so cache
        // provenance cannot change it.
        let mut best_k = 0usize;
        let mut best_err = f64::INFINITY;
        let mut best_cut = 0.0f64;
        for (k, &rho_k) in rho.iter().enumerate() {
            let mut batches: Vec<(i64, u32)> = Vec::new();
            for (j, need) in needed.iter().enumerate() {
                // Find this candidate's incoming error for base j.
                let e = part.incoming_error(&root_coeffs, removed_under(k), j);
                debug_assert!(need.iter().any(|&x: &f64| x.to_bits() == e.to_bits()));
                let cached = self.hist_cache[j]
                    .get(&e.to_bits())
                    .ok_or(CoreError::Protocol("histogram cache miss after refresh"))?;
                batches.extend_from_slice(cached);
            }
            batches.sort_unstable_by_key(|&(bucket, _)| std::cmp::Reverse(bucket));
            let keep = (b - k) as u64;
            let mut cum = 0u64;
            let mut cut_bucket = 0.0f64;
            for (bucket, count) in batches {
                if cum + u64::from(count) > keep {
                    cut_bucket = bucket as f64;
                    break;
                }
                cum += u64::from(count);
            }
            let cut = cut_bucket * width;
            let total = cut.max(rho_k);
            if total < best_err || (total == best_err && k < best_k) {
                best_err = total;
                best_k = k;
                best_cut = cut;
            }
        }
        if !best_err.is_finite() {
            return Err(CoreError::Protocol("no candidate produced a cut"));
        }

        // ---- Stage 3: synopsis traces for cache misses only ----
        let cut_bucket = bucket_of(best_cut, width);
        let keep_base = b - best_k;
        let e_best: Vec<f64> = (0..r)
            .map(|j| part.incoming_error(&root_coeffs, removed_under(best_k), j))
            .collect();
        let syn_stale: Vec<SliceSplit> = (0..r)
            .filter(|&j| !self.trace_cache[j].contains_key(&e_best[j].to_bits()))
            .map(|j| splits[j].clone())
            .collect();
        let mut syn_pairs: Vec<(u32, SynTraceEntry)> = Vec::new();
        let pipe = if syn_stale.is_empty() {
            pipe
        } else {
            stats.map_tasks += syn_stale.len();
            stats.greedy_runs += syn_stale.len();
            let e_bc = Arc::new(e_best.clone());
            let job = JobBuilder::new("dgreedyabs-inc-synopsis")
                .map(
                    move |split: &SliceSplit, ctx: &mut MapContext<u32, SynTraceEntry>| {
                        let j = split.id as usize;
                        let (details, _avg) = part.base_details_from_data(split.slice());
                        let mut g =
                            GreedyAbs::new_subtree(&details, e_bc[j]).expect("valid subtree");
                        let trace = g.run_to_empty();
                        ctx.add_counter("greedy_runs", 1);
                        // Unfiltered: every removal with its running-max
                        // bucket, so the driver can re-filter for any cut.
                        let mut max_bucket = i64::MIN;
                        for (idx, rem) in trace.iter().enumerate() {
                            max_bucket = max_bucket.max(bucket_of(rem.error_after, width));
                            let global = part.local_to_global(j, rem.node as usize);
                            let coeff = details[rem.node as usize - 1];
                            ctx.emit(j as u32, (max_bucket, idx as u32, global as u32, coeff));
                        }
                    },
                )
                .input_bytes(SliceSplit::bytes)
                .task_memory(|s: &SliceSplit| dwmaxerr_algos::memory::greedy_abs_bytes(s.len()))
                .reduce(
                    |k: &u32, vals, ctx: &mut ReduceContext<u32, SynTraceEntry>| {
                        for v in vals {
                            ctx.emit(*k, v);
                        }
                    },
                );
            pipe.stage(&job, &syn_stale)?.then(|(_, pairs)| {
                syn_pairs = pairs;
            })
        };
        let mut fresh_traces: Vec<(usize, Vec<SynTraceEntry>)> = Vec::new();
        for (j, entry) in syn_pairs {
            match fresh_traces.last_mut() {
                Some((last, list)) if *last == j as usize => list.push(entry),
                _ => fresh_traces.push((j as usize, vec![entry])),
            }
        }
        for (j, list) in fresh_traces {
            self.trace_cache[j].insert(e_best[j].to_bits(), Arc::new(list));
        }

        // ---- Final filter replay: concatenate per-base traces in base
        // order (= the shuffle's reduce input order), filter at the
        // winning cut, sort, keep the top keep_base — byte for byte the
        // batch reducer's logic. ----
        let mut nodes: Vec<SynTraceEntry> = Vec::new();
        for (j, e) in e_best.iter().enumerate() {
            let cached = self.trace_cache[j]
                .get(&e.to_bits())
                .ok_or(CoreError::Protocol("trace cache miss after refresh"))?;
            nodes.extend(
                cached
                    .iter()
                    .filter(|&&(bkt, _, _, _)| bkt >= cut_bucket.saturating_sub(1))
                    .copied(),
            );
        }
        nodes.sort_unstable_by_key(|&(bucket, idx, _, _)| std::cmp::Reverse((bucket, idx)));
        let mut entries: Vec<(u32, f64)> = retained_under(best_k)
            .iter()
            .map(|&a| (a as u32, root_coeffs[a]))
            .collect();
        entries.extend(
            nodes
                .into_iter()
                .take(keep_base)
                .map(|(_, _, node, coeff)| (node, coeff)),
        );
        let synopsis = Synopsis::from_entries(n, entries)?;
        let update = DGreedyAbsUpdate {
            synopsis,
            estimated_error: best_err,
            best_croot_size: best_k,
            stats,
        };
        Ok((pipe, update))
    }
}

// ---------------------------------------------------------------------------
// Phased serving driver
// ---------------------------------------------------------------------------

/// The value a [`PhasedSynopsisDriver`] publishes: a synopsis plus what
/// kind of answer it is.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedSynopsis {
    /// The synopsis being served.
    pub synopsis: Synopsis,
    /// The guaranteed max-abs error, when the producer computes one
    /// (`None` for the conventional phase-1 answer, which carries no
    /// max-error guarantee).
    pub guaranteed_error: Option<f64>,
    /// True for the exact DGreedyAbs answer, false for the coarse
    /// phase-1 answer.
    pub exact: bool,
}

/// What one [`PhasedSynopsisDriver::tick`] did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Version of the coarse (foreground) snapshot published this tick.
    pub coarse_version: u64,
    /// Version of the exact (background) snapshot published this tick.
    pub exact_version: u64,
    /// Simulated seconds the coarse answer was the freshest available —
    /// the staleness window a consumer observes before the exact answer
    /// supersedes it.
    pub staleness_secs: f64,
    /// Measured max-abs error of the coarse answer against the window.
    pub coarse_error: f64,
    /// Guaranteed max-abs error of the exact answer.
    pub exact_error: f64,
    /// Bases the tick's appends dirtied.
    pub dirty_bases: usize,
    /// Map tasks the conventional (foreground) update ran.
    pub foreground_tasks: usize,
    /// Map tasks the exact (background) update ran.
    pub background_tasks: usize,
    /// GreedyAbs runs across the background update's tasks.
    pub greedy_runs: usize,
    /// The tick's full metrics ledger (stages tagged with their phase).
    pub metrics: DriverMetrics,
}

/// Serves a continuously maintained synopsis with phased refinement.
///
/// Each [`tick`](PhasedSynopsisDriver::tick) appends new stream values
/// and runs one phased plan on the cluster: a **foreground** phase
/// rebuilds the cheap conventional synopsis incrementally and publishes
/// it immediately, then a **background** phase rebuilds the exact
/// DGreedyAbs synopsis (also incrementally) and atomically swaps it into
/// the same [`Progressive`] handle. A consumer holding the handle always
/// sees the freshest complete snapshot; versions count up across ticks.
#[derive(Debug)]
pub struct PhasedSynopsisDriver {
    window: StreamWindow,
    conventional: IncrementalConventional,
    dgreedy: IncrementalDGreedyAbs,
    handle: Progressive<ServedSynopsis>,
}

impl PhasedSynopsisDriver {
    /// Creates a driver over an `n`-value window with budget `b`.
    pub fn new(n: usize, b: usize, cfg: &DGreedyAbsConfig) -> Result<Self, CoreError> {
        let base_leaves = cfg.base_leaves.clamp(2, n);
        Ok(PhasedSynopsisDriver {
            window: StreamWindow::new(n, base_leaves)?,
            conventional: IncrementalConventional::new(n, b, base_leaves)?,
            dgreedy: IncrementalDGreedyAbs::new(n, b, cfg)?,
            handle: Progressive::empty("synopsis"),
        })
    }

    /// The serving handle (clones share the swap).
    pub fn handle(&self) -> Progressive<ServedSynopsis> {
        self.handle.clone()
    }

    /// The maintained window.
    pub fn window(&self) -> &StreamWindow {
        &self.window
    }

    /// The latest published snapshot, if any tick ran.
    pub fn latest(&self) -> Option<Arc<Snapshot<ServedSynopsis>>> {
        self.handle.latest()
    }

    /// Appends `values` and runs one phased refinement plan.
    pub fn tick(&mut self, cluster: &Cluster, values: &[f64]) -> Result<TickReport, CoreError> {
        self.window.push(values);
        let dirty = self.window.take_dirty_bases();
        for &j in &dirty {
            self.conventional.invalidate(j);
            self.dgreedy.invalidate(j);
        }
        let data = self.window.data().to_vec();

        // Foreground: cheap conventional answer, published immediately.
        let pipe = Pipeline::on(cluster).enter_phase(Phase::Foreground);
        let (pipe, coarse) = self.conventional.update(pipe, &data)?;
        let coarse_served = ServedSynopsis {
            synopsis: coarse.synopsis.clone(),
            guaranteed_error: None,
            exact: false,
        };
        let pipe = pipe.then(|()| coarse_served).publish(&self.handle);
        let coarse_snap = self.handle.latest().expect("just published");

        // Background: exact answer refines the same handle.
        let pipe = pipe.then(|_| ()).enter_phase(Phase::Background(0));
        let (pipe, exact) = self.dgreedy.update(pipe, &data)?;
        let exact_served = ServedSynopsis {
            synopsis: exact.synopsis.clone(),
            guaranteed_error: Some(exact.estimated_error),
            exact: true,
        };
        let pipe = pipe.then(|()| exact_served).publish(&self.handle);
        let exact_snap = self.handle.latest().expect("just published");
        let metrics = pipe.into_metrics();

        let coarse_error = max_abs(&data, &coarse.synopsis.reconstruct_all());
        Ok(TickReport {
            coarse_version: coarse_snap.version,
            exact_version: exact_snap.version,
            staleness_secs: exact_snap.published_at - coarse_snap.published_at,
            coarse_error,
            exact_error: exact.estimated_error,
            dirty_bases: dirty.len(),
            foreground_tasks: coarse.stats.map_tasks,
            background_tasks: exact.stats.map_tasks,
            greedy_runs: exact.stats.greedy_runs,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::con;
    use crate::dgreedy_abs::dgreedy_abs;
    use dwmaxerr_runtime::ClusterConfig;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    fn dg_cfg(s: usize) -> DGreedyAbsConfig {
        DGreedyAbsConfig {
            base_leaves: s,
            bucket_width: 1e-9,
            reducers: 2,
            max_candidates: None,
        }
    }

    fn wavy(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64 * 37 + salt) % 23) as f64 * 3.0 + (i as f64 * 0.7).sin())
            .collect()
    }

    #[test]
    fn window_ring_dirties_only_touched_bases() {
        let mut w = StreamWindow::new(16, 4).unwrap();
        w.push(&[1.0, 2.0, 3.0]);
        assert_eq!(w.filled(), 3);
        assert!(!w.is_full());
        assert_eq!(w.take_dirty_bases(), vec![0]);
        w.push(&[4.0, 5.0]);
        assert_eq!(w.take_dirty_bases(), vec![0, 1]);
        // Fill up and wrap: the ring overwrites base 0 again.
        w.push(&(6..=16).map(f64::from).collect::<Vec<_>>());
        assert!(w.is_full());
        let _ = w.take_dirty_bases();
        w.push(&[99.0]);
        assert_eq!(w.data()[0], 99.0);
        assert_eq!(w.take_dirty_bases(), vec![0]);
    }

    #[test]
    fn incremental_conventional_matches_batch_con() {
        let cluster = test_cluster();
        let n = 64;
        let mut window = StreamWindow::new(n, 8).unwrap();
        let mut inc = IncrementalConventional::new(n, 10, 8).unwrap();
        window.push(&wavy(40, 1)); // ragged tail
        for j in window.take_dirty_bases() {
            inc.invalidate(j);
        }
        let (pipe, up) = inc.update(Pipeline::on(&cluster), window.data()).unwrap();
        let _ = pipe.into_metrics();
        let (batch, _) = con(&test_cluster(), window.data(), 10, 8).unwrap();
        assert_eq!(up.synopsis, batch);

        // Append a little; only touched bases re-run.
        window.push(&wavy(8, 2));
        for j in window.take_dirty_bases() {
            inc.invalidate(j);
        }
        let (pipe, up) = inc.update(Pipeline::on(&cluster), window.data()).unwrap();
        let _ = pipe.into_metrics();
        assert!(up.stats.map_tasks <= 2, "ran {} tasks", up.stats.map_tasks);
        let (batch, _) = con(&test_cluster(), window.data(), 10, 8).unwrap();
        assert_eq!(up.synopsis, batch);
    }

    #[test]
    fn incremental_dgreedy_matches_batch_bit_for_bit() {
        let cluster = test_cluster();
        let n = 64;
        let cfg = dg_cfg(8);
        let mut window = StreamWindow::new(n, 8).unwrap();
        let mut inc = IncrementalDGreedyAbs::new(n, 8, &cfg).unwrap();
        window.push(&wavy(64, 3));
        for j in window.take_dirty_bases() {
            inc.invalidate(j);
        }
        for round in 0..3 {
            let (pipe, up) = inc.update(Pipeline::on(&cluster), window.data()).unwrap();
            let _ = pipe.into_metrics();
            let batch = dgreedy_abs(&test_cluster(), window.data(), 8, &cfg).unwrap();
            assert_eq!(up.synopsis, batch.synopsis, "round {round}");
            assert_eq!(
                up.estimated_error.to_bits(),
                batch.estimated_error.to_bits(),
                "round {round}"
            );
            assert_eq!(up.best_croot_size, batch.best_croot_size, "round {round}");
            window.push(&wavy(8, 4 + round as u64));
            for j in window.take_dirty_bases() {
                inc.invalidate(j);
            }
        }
    }

    #[test]
    fn untouched_window_reruns_nothing() {
        let cluster = test_cluster();
        let n = 32;
        let cfg = dg_cfg(4);
        let mut inc = IncrementalDGreedyAbs::new(n, 6, &cfg).unwrap();
        let data = wavy(32, 7);
        let (pipe, first) = inc.update(Pipeline::on(&cluster), &data).unwrap();
        let _ = pipe.into_metrics();
        assert!(first.stats.map_tasks >= 8); // full rebuild
                                             // Same data, nothing invalidated: pure cache replay, zero jobs.
        let (pipe, second) = inc.update(Pipeline::on(&cluster), &data).unwrap();
        let metrics = pipe.into_metrics();
        assert_eq!(second.stats.map_tasks, 0);
        assert_eq!(metrics.job_count(), 0);
        assert_eq!(first.synopsis, second.synopsis);
    }

    #[test]
    fn phased_driver_publishes_coarse_then_exact() {
        let cluster = test_cluster();
        let mut driver = PhasedSynopsisDriver::new(32, 6, &dg_cfg(4)).unwrap();
        let handle = driver.handle();
        let report = driver.tick(&cluster, &wavy(32, 11)).unwrap();
        assert_eq!(report.coarse_version, 1);
        assert_eq!(report.exact_version, 2);
        assert!(report.staleness_secs > 0.0);
        let latest = handle.latest().unwrap();
        assert!(latest.value.exact);
        assert_eq!(latest.value.guaranteed_error, Some(report.exact_error));
        // The exact answer matches a one-shot build on the same window.
        let batch = dgreedy_abs(&test_cluster(), driver.window().data(), 6, &dg_cfg(4)).unwrap();
        assert_eq!(latest.value.synopsis, batch.synopsis);
        // Stage metrics carry the phases.
        let phases = report.metrics.per_phase();
        assert!(phases
            .iter()
            .any(|p| p.phase == Some(Phase::Foreground) && p.jobs > 0));
        assert!(phases
            .iter()
            .any(|p| p.phase == Some(Phase::Background(0)) && p.jobs > 0));
        // A second tick keeps counting versions up on the same handle.
        let report2 = driver.tick(&cluster, &wavy(4, 12)).unwrap();
        assert_eq!(report2.coarse_version, 3);
        assert_eq!(report2.exact_version, 4);
        assert!(report2.dirty_bases <= 2);
    }
}
