//! Error type for the distributed algorithms.

use std::fmt;

use dwmaxerr_algos::min_haar_space::MhsError;
use dwmaxerr_runtime::RuntimeError;
use dwmaxerr_wavelet::WaveletError;

/// Errors from the distributed drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Input shape or parameter error.
    Wavelet(WaveletError),
    /// The MapReduce engine failed (config or codec).
    Runtime(RuntimeError),
    /// The DP solver failed (bad ε/δ).
    Mhs(MhsError),
    /// An invariant of the distributed protocol was violated (a bug).
    Protocol(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Wavelet(e) => write!(f, "{e}"),
            CoreError::Runtime(e) => write!(f, "{e}"),
            CoreError::Mhs(e) => write!(f, "{e}"),
            CoreError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<WaveletError> for CoreError {
    fn from(e: WaveletError) -> Self {
        CoreError::Wavelet(e)
    }
}

impl From<RuntimeError> for CoreError {
    fn from(e: RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<MhsError> for CoreError {
    fn from(e: MhsError) -> Self {
        CoreError::Mhs(e)
    }
}
