//! DMinRelVar: the Section-4 framework applied to the MinRelVar DP \[12\]
//! — the paper's own illustration of the framework (its Figure 2 shows
//! MinRelVar's `(v, y, l)` cells being combined).
//!
//! Structure is identical to [`mod@crate::dmin_haar_space`]: layer-0 workers
//! solve their base sub-tree bottom-up and emit the local root's M-row;
//! upper layers combine `fan_in` sibling rows; the driver resolves `c_0`;
//! a top-down pass re-enters each sub-problem to extract the allocation.
//!
//! The important difference is the M-row size: `O(B·q)` cells per row
//! instead of MinHaarSpace's `O(ε/δ)`. That makes the per-stage
//! communication `O(N·B·q / 2^h)` (Eq. 6 with `max|M[j]| = O(B·q)`) —
//! quadratic in the worst case `B = Θ(N)`, which is exactly why the
//! SIGMOD'16 paper pivots to the dual Problem 2. The
//! `dp_communication` ablation bench measures this blow-up.

use std::collections::HashMap;
use std::sync::Arc;

use dwmaxerr_algos::min_rel_var::{combine, subtree_rows, CoinFlipper, MrvCell, MrvParams, MrvRow};
use dwmaxerr_runtime::codec::{CodecError, Wire};
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::splits::{aligned_splits, SliceSplit};

/// Wire wrapper for MinRelVar rows.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMrvRow(pub MrvRow);

impl Wire for WireMrvRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.min_norm.encode(buf);
        (self.0.cells.len() as u32).encode(buf);
        for c in &self.0.cells {
            c.v.encode(buf);
            c.y.encode(buf);
            c.l.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let min_norm = f64::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        let mut cells = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            cells.push(MrvCell {
                v: f64::decode(buf)?,
                y: u16::decode(buf)?,
                l: u32::decode(buf)?,
            });
        }
        Ok(WireMrvRow(MrvRow { min_norm, cells }))
    }
}

/// DMinRelVar configuration.
#[derive(Debug, Clone)]
pub struct DmrvConfig {
    /// Leaves per base sub-tree (power of two).
    pub base_leaves: usize,
    /// Rows combined per upper-layer worker (power of two ≥ 2).
    pub fan_in: usize,
    /// Retention-probability quantization `q`.
    pub params: MrvParams,
    /// Seed for the retention coin flips.
    pub seed: u64,
}

/// Result of a DMinRelVar run.
#[derive(Debug, Clone)]
pub struct DmrvResult {
    /// The probabilistic synopsis.
    pub synopsis: Synopsis,
    /// The DP's bound on the maximum normalized squared error.
    pub nse_bound: f64,
    /// Expected synopsis size `Σ y`.
    pub expected_size: f64,
    /// Pipeline metrics (row exchange is the interesting part).
    pub metrics: DriverMetrics,
}

/// A group of sibling rows plus the coefficients of the mini-tree above
/// them (an upper-layer worker's input).
#[derive(Debug, Clone)]
struct RowGroup {
    first: u64,
    rows: Vec<MrvRow>,
    /// Coefficients of the mini-tree's internal nodes, heap order
    /// (index 0 unused), taken from the root coefficients.
    mini_coeffs: Vec<f64>,
    cap: usize,
}

/// Internal rows of a worker's mini-tree above `input` rows.
fn mini_tree_rows(group: &RowGroup, p: &MrvParams) -> Vec<MrvRow> {
    let f = group.rows.len();
    debug_assert!(f.is_power_of_two() && f >= 2);
    let empty = MrvRow {
        min_norm: 1.0,
        cells: Vec::new(),
    };
    let mut rows = vec![empty; f];
    for i in (1..f).rev() {
        rows[i] = if 2 * i < f {
            let (l, r) = rows.split_at(2 * i + 1);
            combine(&l[2 * i], &r[0], group.mini_coeffs[i], group.cap, p)
        } else {
            let base = (i - f / 2) * 2;
            combine(
                &group.rows[base],
                &group.rows[base + 1],
                group.mini_coeffs[i],
                group.cap,
                p,
            )
        };
    }
    rows
}

/// Runs DMinRelVar: the probabilistic max-rel synopsis with expected
/// budget `b`, computed through layered jobs.
pub fn dmin_rel_var(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    cfg: &DmrvConfig,
) -> Result<DmrvResult, CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    let s = cfg.base_leaves.clamp(2, n);
    let fan_in = cfg.fan_in.max(2);
    if !s.is_power_of_two() || !fan_in.is_power_of_two() {
        return Err(CoreError::Protocol(
            "base_leaves and fan_in must be powers of two",
        ));
    }
    if n < 2 {
        let sol = dwmaxerr_algos::min_rel_var::min_rel_var(data, b, &cfg.params, cfg.seed)?;
        return Ok(DmrvResult {
            synopsis: sol.synopsis,
            nse_bound: sol.nse_bound,
            expected_size: sol.expected_size,
            metrics: DriverMetrics::new(),
        });
    }
    let splits = aligned_splits(data, s);
    let num_base = n / s;
    let p = cfg.params;
    let q = p.q as usize;
    let cap = (b * q).min(n * q);

    // The upper-tree coefficients come from the slice averages (needed by
    // the mini-tree combines); gather them with the base rows in one job.
    let base_job = JobBuilder::new("dmrv-layer0")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u64, (f64, WireMrvRow)>| {
                let w = dwmaxerr_wavelet::transform::forward(split.slice()).expect("pow2 slice");
                let rows = subtree_rows(&w[1..], split.slice(), cap, &p).expect("valid subtree");
                ctx.emit(
                    num_base as u64 + split.id as u64,
                    (w[0], WireMrvRow(rows[1].clone())),
                );
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, (f64, WireMrvRow)>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let pipe = Pipeline::on(cluster)
        .stage(&base_job, &splits)?
        .then(|(_, pairs)| {
            let mut layer: Vec<(u64, MrvRow)> = Vec::with_capacity(num_base);
            let mut averages = vec![0.0; num_base];
            for (k, (avg, WireMrvRow(row))) in pairs {
                averages[(k - num_base as u64) as usize] = avg;
                layer.push((k, row));
            }
            layer.sort_unstable_by_key(|&(k, _)| k);
            let root_coeffs =
                dwmaxerr_wavelet::transform::forward(&averages).expect("pow2 averages");
            (layer, root_coeffs)
        });
    let root_coeffs = pipe.value().1.clone();
    let mut pipe = pipe.then(|(layer, _)| layer);

    let mini_coeffs_for = |first: u64, f: usize| -> Vec<f64> {
        // Global ids of the mini-tree internal nodes; their coefficients
        // live in the upper (root) coefficient array.
        let mut v = vec![0.0; f];
        for (i, slot) in v.iter_mut().enumerate().skip(1) {
            let depth = usize::BITS - 1 - i.leading_zeros();
            let root = first / f as u64;
            let g = ((root << depth) + (i as u64 - (1u64 << depth))) as usize;
            *slot = root_coeffs[g];
        }
        v
    };

    // ---- Bottom-up layers ----
    let mut group_stack: Vec<Vec<RowGroup>> = Vec::new();
    while pipe.value().len() > 1 {
        let layer = pipe.value();
        let f = fan_in.min(layer.len());
        let groups: Vec<RowGroup> = layer
            .chunks(f)
            .map(|chunk| RowGroup {
                first: chunk[0].0,
                rows: chunk.iter().map(|(_, r)| r.clone()).collect(),
                mini_coeffs: mini_coeffs_for(chunk[0].0, f),
                cap,
            })
            .collect();
        let up_job = JobBuilder::new("dmrv-layer-up")
            .map(
                move |group: &RowGroup, ctx: &mut MapContext<u64, WireMrvRow>| {
                    let rows = mini_tree_rows(group, &p);
                    ctx.emit(
                        group.first / group.rows.len() as u64,
                        WireMrvRow(rows[1].clone()),
                    );
                },
            )
            .input_bytes(|g: &RowGroup| {
                g.rows
                    .iter()
                    .map(|r| (12 + r.cells.len() * 14) as u64)
                    .sum()
            })
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, WireMrvRow>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
        pipe = pipe.stage(&up_job, &groups)?.then(|(_, pairs)| {
            let mut layer: Vec<(u64, MrvRow)> =
                pairs.into_iter().map(|(k, WireMrvRow(r))| (k, r)).collect();
            layer.sort_unstable_by_key(|&(k, _)| k);
            layer
        });
        group_stack.push(groups);
    }

    // ---- Root resolution: c_0 ----
    let root_row = &pipe.value()[0].1;
    let mut best = (f64::INFINITY, 0u32, 0usize);
    for u in 0..=(q.min(cap)) as u32 {
        let var0 = if root_coeffs[0] == 0.0 {
            0.0
        } else if u == 0 {
            root_coeffs[0] * root_coeffs[0]
        } else if u as usize >= q {
            0.0
        } else {
            let y = f64::from(u) / f64::from(p.q);
            root_coeffs[0] * root_coeffs[0] * (1.0 - y) / y
        };
        let rem = (cap - u as usize).min(root_row.cells.len() - 1);
        let v = root_row.v(rem) + var0 / (root_row.min_norm * root_row.min_norm);
        if v < best.0 {
            best = (v, u, rem);
        }
    }

    // ---- Top-down extraction through the same groups ----
    let mut pipe = pipe.then(|_| ());
    let mut allocation: Vec<(u64, u16)> = Vec::new();
    if best.1 > 0 {
        allocation.push((0, best.1 as u16));
    }
    let mut budgets: HashMap<u64, usize> = HashMap::new();
    budgets.insert(1, best.2);
    for groups in group_stack.into_iter().rev() {
        let tagged: Vec<(RowGroup, usize)> = groups
            .into_iter()
            .map(|g| {
                let parent = g.first / g.rows.len() as u64;
                let bu = *budgets.get(&parent).expect("budget for every group root");
                (g, bu)
            })
            .collect();
        let extract_job = JobBuilder::new("dmrv-extract")
            .map(
                move |(group, b_root): &(RowGroup, usize),
                      ctx: &mut MapContext<u64, (u32, u32)>| {
                    let f = group.rows.len();
                    let rows = mini_tree_rows(group, &p);
                    let mut stack = vec![(1usize, *b_root)];
                    while let Some((i, bi)) = stack.pop() {
                        let cell = rows[i].cell(bi);
                        let depth = usize::BITS - 1 - i.leading_zeros();
                        let g_id =
                            ((group.first / f as u64) << depth) + (i as u64 - (1u64 << depth));
                        if cell.y > 0 {
                            // Allocation record (tag 1).
                            ctx.emit(g_id, (1, u32::from(cell.y)));
                        }
                        let (l_len, r_len) = if 2 * i < f {
                            (rows[2 * i].cells.len(), rows[2 * i + 1].cells.len())
                        } else {
                            let base = (i - f / 2) * 2;
                            (
                                group.rows[base].cells.len(),
                                group.rows[base + 1].cells.len(),
                            )
                        };
                        let joint = l_len - 1 + r_len - 1;
                        let rem = (bi.min(rows[i].cells.len() - 1) - cell.y as usize).min(joint);
                        if 2 * i < f {
                            stack.push((2 * i, cell.l as usize));
                            stack.push((2 * i + 1, rem - cell.l as usize));
                        } else {
                            // Budget handoff to the next layer (tag 0).
                            let child = group.first + ((i - f / 2) * 2) as u64;
                            ctx.emit(child, (0, cell.l));
                            ctx.emit(child + 1, (0, (rem - cell.l as usize) as u32));
                        }
                    }
                },
            )
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, (u32, u32)>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
        pipe = pipe.stage(&extract_job, &tagged)?.then(|(_, pairs)| {
            for (node, (tag, val)) in pairs {
                if tag == 1 {
                    allocation.push((node, val as u16));
                } else {
                    budgets.insert(node, val as usize);
                }
            }
        });
    }

    // ---- Base-layer extraction ----
    let base_budgets: Vec<usize> = (0..num_base)
        .map(|j| {
            if num_base == 1 {
                best.2
            } else {
                *budgets
                    .get(&(num_base as u64 + j as u64))
                    .expect("budget for every base root")
            }
        })
        .collect();
    let base_budgets = Arc::new(base_budgets);
    let bb = Arc::clone(&base_budgets);
    let base_extract_job = JobBuilder::new("dmrv-extract-base")
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u64, u16>| {
            let w = dwmaxerr_wavelet::transform::forward(split.slice()).expect("pow2 slice");
            let rows = subtree_rows(&w[1..], split.slice(), cap, &p).expect("phase A ran");
            let m = split.len();
            let mut stack = vec![(1usize, bb[split.id as usize])];
            while let Some((i, bi)) = stack.pop() {
                let cell = rows[i].cell(bi);
                if cell.y > 0 {
                    let depth = usize::BITS - 1 - i.leading_zeros();
                    let root = num_base as u64 + split.id as u64;
                    let g = (root << depth) + (i as u64 - (1u64 << depth));
                    ctx.emit(g, cell.y);
                }
                if 2 * i < m {
                    let joint = rows[2 * i].cells.len() - 1 + rows[2 * i + 1].cells.len() - 1;
                    let rem = (bi.min(rows[i].cells.len() - 1) - cell.y as usize).min(joint);
                    stack.push((2 * i, cell.l as usize));
                    stack.push((2 * i + 1, rem - cell.l as usize));
                }
            }
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, u16>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let ((), metrics) = pipe
        .stage(&base_extract_job, &splits)?
        .then(|(_, pairs)| {
            for (node, yu) in pairs {
                allocation.push((node, yu));
            }
        })
        .finish();

    // ---- Coin flips (driver-side, to match the centralized seed) ----
    allocation.sort_unstable_by_key(|&(i, _)| i);
    let coeffs = dwmaxerr_wavelet::transform::forward(data)?;
    let mut flipper = CoinFlipper::new(cfg.seed);
    let mut entries = Vec::new();
    let mut expected = 0.0;
    for &(node, yu) in &allocation {
        let y = f64::from(yu) / f64::from(p.q);
        expected += y;
        if flipper.flip(y) {
            entries.push((node as u32, coeffs[node as usize] / y));
        }
    }
    Ok(DmrvResult {
        synopsis: Synopsis::from_entries(n, entries)?,
        nse_bound: best.0,
        expected_size: expected,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::min_rel_var::min_rel_var;
    use dwmaxerr_runtime::ClusterConfig;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    fn run(data: &[f64], b: usize, s: usize, f: usize) -> DmrvResult {
        let cfg = DmrvConfig {
            base_leaves: s,
            fan_in: f,
            params: MrvParams::new(4, 1.0).unwrap(),
            seed: 42,
        };
        dmin_rel_var(&test_cluster(), data, b, &cfg).unwrap()
    }

    #[test]
    fn matches_centralized_bound_and_allocation() {
        let data: Vec<f64> = (0..64)
            .map(|i| ((i * 23) % 31) as f64 + if i % 13 == 0 { 40.0 } else { 0.0 })
            .collect();
        let p = MrvParams::new(4, 1.0).unwrap();
        for b in [2usize, 4, 8, 16] {
            let central = min_rel_var(&data, b, &p, 42).unwrap();
            let dist = run(&data, b, 8, 2);
            assert!(
                (dist.nse_bound - central.nse_bound).abs() < 1e-9,
                "b={b}: distributed {} vs centralized {}",
                dist.nse_bound,
                central.nse_bound
            );
            assert!(
                (dist.expected_size - central.expected_size).abs() < 1e-9,
                "b={b}: expected sizes differ"
            );
        }
    }

    #[test]
    fn partitioning_invariance() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 7) % 19) as f64 * 2.0).collect();
        let bounds: Vec<f64> = [(4usize, 2usize), (8, 4), (16, 2), (32, 2)]
            .iter()
            .map(|&(s, f)| run(&data, 6, s, f).nse_bound)
            .collect();
        for w in bounds.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-9,
                "partitioning changed the bound: {bounds:?}"
            );
        }
    }

    #[test]
    fn expected_size_within_budget() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64 * 1.3) % 17.0).collect();
        for b in [0usize, 3, 8, 16] {
            let dist = run(&data, b, 8, 2);
            assert!(
                dist.expected_size <= b as f64 + 1e-9,
                "b={b}: expected {}",
                dist.expected_size
            );
        }
    }

    #[test]
    fn row_bytes_grow_with_budget() {
        // The O(B·q) row: doubling B roughly doubles the per-stage row
        // exchange — the Section-4 communication analysis.
        let data: Vec<f64> = (0..128).map(|i| ((i * 11) % 41) as f64).collect();
        let small = run(&data, 4, 16, 2);
        let large = run(&data, 32, 16, 2);
        let bytes = |r: &DmrvResult| {
            r.metrics
                .jobs
                .iter()
                .filter(|j| j.name.contains("layer"))
                .map(|j| j.shuffle_bytes)
                .sum::<u64>()
        };
        assert!(
            bytes(&large) > bytes(&small) * 3,
            "row exchange should scale with B: {} vs {}",
            bytes(&large),
            bytes(&small)
        );
    }

    #[test]
    fn wire_row_roundtrip() {
        let row = MrvRow {
            min_norm: 2.5,
            cells: vec![
                MrvCell { v: 1.0, y: 2, l: 3 },
                MrvCell { v: 0.5, y: 0, l: 1 },
            ],
        };
        let mut buf = Vec::new();
        WireMrvRow(row.clone()).encode(&mut buf);
        let mut s = buf.as_slice();
        let back = WireMrvRow::decode(&mut s).unwrap();
        assert_eq!(back.0, row);
        assert!(s.is_empty());
    }
}
