//! Point and range-sum queries over synopses, with guaranteed error
//! bounds attached to every answer.
//!
//! A thresholded synopsis is only useful to a consumer if each answer
//! says *how wrong it can be*. This module defines the error-bound
//! contract shared by the one-shot CLI, the examples, and the sharded
//! serving layer (`dwmaxerr-serve`):
//!
//! * [`ErrorBound`] — what the *build* guarantees about the synopsis:
//!   an absolute per-point bound (`err_abs`, from DGreedyAbs), a
//!   relative per-point bound (`err_rel` with its sanity constant, from
//!   DGreedyRel), either, both, or neither (the conventional L2
//!   synopsis guarantees nothing per point).
//! * [`Answer`] — one query result: the value, the bound scaled to
//!   *this* query, and the snapshot version it was computed from.
//! * [`point_answer`] / [`range_answer`] — the reference (unsharded)
//!   query evaluators over a plain [`Synopsis`]. The sharded store in
//!   `dwmaxerr-serve` must agree with these up to floating-point
//!   summation order.
//!
//! # How bounds scale per query
//!
//! For a **point query** `d̂_x` the build guarantees transfer directly:
//! `|d̂_x - d_x| <= err_abs` and `|d̂_x - d_x| <= err_rel ·
//! max(|d_x|, sanity)`.
//!
//! For a **range sum** `d̂(l:h)` the absolute bound composes additively:
//! each of the `h - l + 1` reconstructed points is off by at most
//! `err_abs`, so the sum is off by at most `(h - l + 1) · err_abs`. The
//! relative bound does **not** compose without knowing the data (the
//! per-point slack `err_rel · max(|d_j|, sanity)` depends on every
//! `|d_j|` in the range), so range answers carry `err_rel: None` — this
//! asymmetry is part of the contract, not an implementation gap.

use dwmaxerr_wavelet::reconstruct::range_sum_synopsis;
use dwmaxerr_wavelet::Synopsis;

use crate::dgreedy_abs::{DGreedyAbsConfig, DGreedyAbsResult};
use crate::dgreedy_rel::{DGreedyRelConfig, DGreedyRelResult};

/// The per-point guarantee a synopsis build established, attached to the
/// synopsis when it enters a serving layer.
///
/// Both bounds are *upper* bounds: a missing bound (`None`) means the
/// build made no such promise, not that the error is zero.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBound {
    /// Guaranteed maximum absolute error per reconstructed point
    /// (Eq. 2): `|d̂_j - d_j| <= err_abs` for every `j`.
    pub err_abs: Option<f64>,
    /// Guaranteed maximum relative error per reconstructed point
    /// (Eq. 3): `|d̂_j - d_j| <= err_rel · max(|d_j|, sanity)`.
    pub err_rel: Option<RelBound>,
}

/// A relative-error guarantee together with the sanity constant it was
/// established against (Eq. 3's `s`; without it a relative bound is
/// meaningless on near-zero data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelBound {
    /// The guaranteed maximum relative error.
    pub epsilon: f64,
    /// The sanity constant `s > 0` of Eq. 3.
    pub sanity: f64,
}

impl ErrorBound {
    /// No guarantee at all (the conventional / L2 synopsis).
    pub fn none() -> Self {
        ErrorBound::default()
    }

    /// An absolute-only guarantee.
    pub fn abs(err_abs: f64) -> Self {
        ErrorBound {
            err_abs: Some(err_abs),
            err_rel: None,
        }
    }

    /// A relative-only guarantee with its sanity constant.
    pub fn rel(epsilon: f64, sanity: f64) -> Self {
        ErrorBound {
            err_abs: None,
            err_rel: Some(RelBound { epsilon, sanity }),
        }
    }

    /// The guarantee established by a [`dgreedy_abs`](crate::dgreedy_abs::dgreedy_abs)
    /// build.
    ///
    /// `estimated_error` is exact only up to the error-histogram bucket
    /// width `e_b` (Algorithm 3 floor-buckets running-max errors, so the
    /// cut it reads can under-report by strictly less than one bucket);
    /// widening by `e_b` turns the estimate into a safe upper bound.
    /// `tests/end_to_end.rs` pins `|actual - estimated| <= e_b`.
    pub fn from_dgreedy_abs(result: &DGreedyAbsResult, cfg: &DGreedyAbsConfig) -> Self {
        ErrorBound::abs(result.estimated_error + cfg.bucket_width)
    }

    /// The guarantee established by a [`dgreedy_rel`](crate::dgreedy_rel::dgreedy_rel)
    /// build. Its `error` field is the *measured* exact maximum relative
    /// error (a distributed evaluation job computes it against the data),
    /// so no widening is needed.
    pub fn from_dgreedy_rel(result: &DGreedyRelResult, cfg: &DGreedyRelConfig) -> Self {
        ErrorBound::rel(result.error, cfg.sanity)
    }

    /// True when neither bound is present.
    pub fn is_none(&self) -> bool {
        self.err_abs.is_none() && self.err_rel.is_none()
    }
}

/// One query answer: the reconstructed value plus the error bound scaled
/// to this specific query (see the module docs for the scaling rules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// The reconstructed value (point) or reconstructed sum (range).
    pub value: f64,
    /// Guaranteed absolute bound for **this** answer: per-point
    /// `err_abs` for point queries, `(h - l + 1) · err_abs` for range
    /// sums. `None` when the build made no absolute promise.
    pub err_abs: Option<f64>,
    /// Guaranteed relative bound for this answer. Point queries inherit
    /// the build's [`RelBound`]; range sums always carry `None`.
    pub err_rel: Option<RelBound>,
    /// Version of the snapshot the answer was computed from (0 for
    /// direct evaluation outside a versioned store).
    pub version: u64,
}

impl Answer {
    /// The half-width of the certain interval around `value` when the
    /// exact value is known to be `exact`-ish: checks the answer against
    /// ground truth. Returns true when `exact` is consistent with every
    /// bound the answer carries (used by tests and the bench verifier;
    /// `slack` absorbs floating-point noise).
    pub fn bounds_hold(&self, exact: f64, slack: f64) -> bool {
        let diff = (self.value - exact).abs();
        if let Some(b) = self.err_abs {
            if diff > b + slack {
                return false;
            }
        }
        if let Some(RelBound { epsilon, sanity }) = self.err_rel {
            if diff > epsilon * exact.abs().max(sanity) + slack {
                return false;
            }
        }
        true
    }
}

/// Scales a build-level bound to a range query of `width` points:
/// absolute bounds compose additively, relative bounds are dropped.
pub fn range_bound(bound: &ErrorBound, width: usize) -> ErrorBound {
    ErrorBound {
        err_abs: bound.err_abs.map(|e| e * width as f64),
        err_rel: None,
    }
}

/// Reference point query: reconstructs `d̂_x` from the synopsis in
/// `O(log n + log B)` and attaches the build's per-point bound.
///
/// # Panics
/// Panics when `x >= synopsis.data_len()`.
pub fn point_answer(synopsis: &Synopsis, bound: &ErrorBound, x: usize) -> Answer {
    assert!(x < synopsis.data_len(), "point query out of range");
    Answer {
        value: synopsis.reconstruct_value(x),
        err_abs: bound.err_abs,
        err_rel: bound.err_rel,
        version: 0,
    }
}

/// Reference range-sum query: reconstructs `d̂(l:h)` (inclusive) via the
/// path-union rule of Section 2.2 and attaches the additively-composed
/// absolute bound.
///
/// # Panics
/// Panics when `l > h` or `h >= synopsis.data_len()`.
pub fn range_answer(synopsis: &Synopsis, bound: &ErrorBound, l: usize, h: usize) -> Answer {
    assert!(
        l <= h && h < synopsis.data_len(),
        "range query out of range"
    );
    let scaled = range_bound(bound, h - l + 1);
    Answer {
        value: range_sum_synopsis(synopsis, l, h),
        err_abs: scaled.err_abs,
        err_rel: None,
        version: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_wavelet::transform::forward;

    const PAPER_DATA: [f64; 8] = [5.0, 5.0, 0.0, 26.0, 1.0, 3.0, 14.0, 2.0];

    fn paper_synopsis() -> Synopsis {
        let w = forward(&PAPER_DATA).unwrap();
        Synopsis::retain_indices(&w, &[0, 3, 5]).unwrap()
    }

    #[test]
    fn point_answers_carry_the_per_point_bound() {
        let syn = paper_synopsis();
        let approx = syn.reconstruct_all();
        let max_abs = dwmaxerr_wavelet::metrics::max_abs(&PAPER_DATA, &approx);
        let bound = ErrorBound::abs(max_abs);
        for (j, &d) in PAPER_DATA.iter().enumerate() {
            let a = point_answer(&syn, &bound, j);
            assert_eq!(a.value, approx[j]);
            assert_eq!(a.err_abs, Some(max_abs));
            assert!(a.bounds_hold(d, 1e-12), "point {j}");
        }
    }

    #[test]
    fn range_answers_scale_the_absolute_bound() {
        let syn = paper_synopsis();
        let approx = syn.reconstruct_all();
        let max_abs = dwmaxerr_wavelet::metrics::max_abs(&PAPER_DATA, &approx);
        let bound = ErrorBound {
            err_abs: Some(max_abs),
            err_rel: Some(RelBound {
                epsilon: 0.5,
                sanity: 1.0,
            }),
        };
        for l in 0..8 {
            for h in l..8 {
                let a = range_answer(&syn, &bound, l, h);
                let exact: f64 = PAPER_DATA[l..=h].iter().sum();
                assert_eq!(a.err_abs, Some(max_abs * (h - l + 1) as f64));
                assert_eq!(a.err_rel, None, "relative bounds never scale to ranges");
                assert!(a.bounds_hold(exact, 1e-9), "range {l}..={h}");
            }
        }
    }

    #[test]
    fn relative_bounds_hold_with_sanity_floor() {
        let syn = paper_synopsis();
        let approx = syn.reconstruct_all();
        let sanity = 2.0;
        let eps = dwmaxerr_wavelet::metrics::max_rel(&PAPER_DATA, &approx, sanity);
        let bound = ErrorBound::rel(eps, sanity);
        for (j, &d) in PAPER_DATA.iter().enumerate() {
            let a = point_answer(&syn, &bound, j);
            assert!(a.bounds_hold(d, 1e-12), "point {j}");
        }
    }

    #[test]
    fn bounds_hold_rejects_violations() {
        let a = Answer {
            value: 10.0,
            err_abs: Some(1.0),
            err_rel: None,
            version: 0,
        };
        assert!(a.bounds_hold(9.5, 0.0));
        assert!(!a.bounds_hold(8.0, 0.0));
        let r = Answer {
            value: 10.0,
            err_abs: None,
            err_rel: Some(RelBound {
                epsilon: 0.1,
                sanity: 1.0,
            }),
            version: 0,
        };
        assert!(r.bounds_hold(9.5, 0.0)); // 0.5 <= 0.1 * 9.5
        assert!(!r.bounds_hold(5.0, 0.0));
    }

    #[test]
    fn none_bound_promises_nothing_and_never_fails() {
        let syn = paper_synopsis();
        let bound = ErrorBound::none();
        assert!(bound.is_none());
        let a = point_answer(&syn, &bound, 0);
        assert_eq!(a.err_abs, None);
        assert!(a.bounds_hold(f64::MAX, 0.0));
    }
}
