//! Send-V (Appendix A.2): the degenerate sequential baseline.
//!
//! Without the histogram pre-aggregation of \[21\], Send-V reduces to a
//! plan where mappers forward raw `(position, value)` pairs and a single
//! reducer reads the entire dataset, computes the full wavelet transform
//! centrally and retains the B largest normalized coefficients. It
//! produces the same synopsis as CON at `O(N)` shuffle and a fully
//! sequential reduce phase — the paper's Figure 10 shows it losing to
//! every parallel alternative.

use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::splits::{block_splits, SliceSplit};

/// Runs Send-V with `parts` mapper blocks (unaligned; the mappers do no
/// real work).
pub fn send_v(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    parts: usize,
) -> Result<(Synopsis, DriverMetrics), CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    let splits = block_splits(data, parts);

    let job = JobBuilder::new("send-v")
        .map(|split: &SliceSplit, ctx: &mut MapContext<u64, f64>| {
            for (off, &v) in split.slice().iter().enumerate() {
                ctx.emit((split.start() + off) as u64, v);
            }
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, f64>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });

    let ((entries, _), metrics) = Pipeline::on(cluster)
        .stage(&job, &splits)?
        // The single reducer's centralized work: rebuild the array (keys
        // arrive sorted), transform, threshold.
        .try_then(|(_, pairs)| -> Result<_, CoreError> {
            let start = std::time::Instant::now();
            let mut rebuilt = vec![0.0; n];
            for (k, v) in pairs {
                rebuilt[k as usize] = v;
            }
            let coeffs = dwmaxerr_wavelet::transform::forward(&rebuilt)?;
            let entries = super::top_b_by_normalized(
                coeffs.iter().enumerate().map(|(i, &c)| (i as u64, c)),
                n,
                b,
            );
            Ok((entries, start.elapsed().as_secs_f64()))
        })?
        // Attribute the centralized work to the reduce phase by charging
        // its wall time into the job's reduce task before the driver
        // reports.
        .amend_last(|&(_, central_secs), jm| {
            if let Some(t) = jm.reduce_task_secs.first_mut() {
                *t += central_secs;
                jm.sim.reduce += central_secs;
            }
        })
        .finish();

    Ok((Synopsis::from_entries(n, entries)?, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::conventional::conventional_synopsis;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::transform::forward;

    #[test]
    fn matches_reference() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 11) % 29) as f64).collect();
        let expect = conventional_synopsis(&forward(&data).unwrap(), 7).unwrap();
        let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));
        let (syn, m) = send_v(&cluster, &data, 7, 3).unwrap();
        assert_eq!(syn, expect);
        // Everything shuffles: N records of 16 bytes.
        assert_eq!(m.jobs[0].shuffle_records, 64);
    }
}
