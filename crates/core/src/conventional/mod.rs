//! Parallel construction of the conventional (L2-optimal) synopsis
//! (Appendix A): four algorithms that produce identical synopses with very
//! different cost structures.
//!
//! * [`con`] — the paper's own algorithm: locality-preserving partitioning,
//!   local transforms, one reducer keeping the B largest normalized
//!   coefficients (A.1).
//! * [`send_v`] — degenerate sequential baseline: ship every value to one
//!   reducer that does all the work (A.2).
//! * [`send_coef`] — Jestes et al.'s basis-vector streaming: unaligned
//!   blocks, per-datum path contributions (A.3).
//! * [`hwtopk`] — the TPUT-based three-round distributed top-k (A.4).

mod con_impl;
mod hwtopk_impl;
mod send_coef_impl;
mod send_v_impl;

pub use con_impl::con;
pub use hwtopk_impl::{hwtopk, HWTopkReport};
pub use send_coef_impl::{send_coef, send_coef_combined};
pub use send_v_impl::send_v;

use dwmaxerr_wavelet::tree::TreeTopology;

/// The L2 normalization factor of node `i` in an `n`-value tree:
/// `1 / sqrt(2^level(i))`.
pub(crate) fn norm_factor(topo: &TreeTopology, i: usize) -> f64 {
    1.0 / f64::from(1u32 << topo.level(i)).sqrt()
}

/// Keeps the `b` entries with the largest `|normalized value|` from
/// `(node, raw value)` pairs; ties break to the lower node id.
pub(crate) fn top_b_by_normalized(
    pairs: impl IntoIterator<Item = (u64, f64)>,
    n: usize,
    b: usize,
) -> Vec<(u32, f64)> {
    let topo = TreeTopology::new(n).expect("power-of-two n");
    let mut all: Vec<(u64, f64)> = pairs.into_iter().collect();
    all.sort_unstable_by(|&(i, vi), &(j, vj)| {
        let ni = vi.abs() * norm_factor(&topo, i as usize);
        let nj = vj.abs() * norm_factor(&topo, j as usize);
        nj.partial_cmp(&ni).expect("finite").then(i.cmp(&j))
    });
    all.truncate(b);
    all.into_iter().map(|(i, v)| (i as u32, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::conventional::conventional_synopsis;
    use dwmaxerr_runtime::{Cluster, ClusterConfig};
    use dwmaxerr_wavelet::transform::forward;
    use dwmaxerr_wavelet::Synopsis;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    fn reference(data: &[f64], b: usize) -> Synopsis {
        conventional_synopsis(&forward(data).unwrap(), b).unwrap()
    }

    /// All four Appendix-A algorithms must produce exactly the reference
    /// conventional synopsis ("For any given dataset, all four described
    /// algorithms produce exactly the same synopses", A.5).
    #[test]
    fn all_four_agree_with_reference() {
        let data: Vec<f64> = (0..64)
            .map(|i| ((i * 37) % 23) as f64 * 3.0 + if i == 11 { 70.0 } else { 0.0 })
            .collect();
        for b in [1usize, 4, 8, 16] {
            let cluster = test_cluster();
            let expect = reference(&data, b);
            let (c, _) = con(&cluster, &data, b, 8).unwrap();
            assert_eq!(c, expect, "CON b={b}");
            let (v, _) = send_v(&cluster, &data, b, 4).unwrap();
            assert_eq!(v, expect, "Send-V b={b}");
            let (s, _) = send_coef(&cluster, &data, b, 5).unwrap();
            assert_eq!(s, expect, "Send-Coef b={b}");
            let h = hwtopk(&cluster, &data, b, 5).unwrap();
            assert_eq!(h.synopsis, expect, "H-WTopk b={b}");
        }
    }

    #[test]
    fn top_b_matches_tree_ordering() {
        let data = [5.0, 5.0, 0.0, 26.0, 1.0, 3.0, 14.0, 2.0];
        let w = forward(&data).unwrap();
        let pairs = w.iter().enumerate().map(|(i, &v)| (i as u64, v));
        let top = top_b_by_normalized(pairs, 8, 3);
        let idx: Vec<u32> = top.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 5, 7]);
    }

    #[test]
    fn shuffle_cost_ordering_matches_paper() {
        // CON's locality-preserving partitioning must shuffle fewer bytes
        // than Send-Coef's path-scatter (Appendix A.1 vs A.3 analysis);
        // Send-V ships everything and is the worst of the three.
        let data: Vec<f64> = (0..256).map(|i| ((i * 13) % 101) as f64).collect();
        let b = 16;
        let cluster = test_cluster();
        let (_, m_con) = con(&cluster, &data, b, 32).unwrap();
        let (_, m_sv) = send_v(&cluster, &data, b, 8).unwrap();
        let (_, m_sc) = send_coef(&cluster, &data, b, 8).unwrap();
        let con_bytes = m_con.total_shuffle_bytes();
        let sv_bytes = m_sv.total_shuffle_bytes();
        let sc_bytes = m_sc.total_shuffle_bytes();
        assert!(
            con_bytes < sc_bytes,
            "CON {con_bytes} !< Send-Coef {sc_bytes}"
        );
        // Send-V also ships O(N) records; its penalty is the fully
        // sequential reduce phase (asserted by the fig10 bench, where the
        // sizes make timing meaningful), not shuffle volume.
        assert!(con_bytes <= sv_bytes, "CON {con_bytes} > Send-V {sv_bytes}");
    }
}
