//! CON (Appendix A.1): the paper's locality-preserving conventional
//! synopsis.
//!
//! Mappers read power-of-two-aligned slices, run the local Haar transform
//! (`O(S)`), and emit every detail coefficient plus the slice average; the
//! reducer assembles the root sub-tree from the averages and keeps the `B`
//! largest coefficients in absolute normalized value. Communication is
//! `O(N)` but — unlike Send-Coef — each coefficient crosses the wire
//! exactly once, fully computed.

use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::partition::BasePartition;
use crate::splits::{aligned_splits, SliceSplit};

/// Runs CON: the conventional B-term synopsis with locality-preserving
/// partitioning into `base_leaves`-sized slices.
pub fn con(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    base_leaves: usize,
) -> Result<(Synopsis, DriverMetrics), CoreError> {
    let n = data.len();
    let s = base_leaves.clamp(2, n);
    let partition = BasePartition::new(n, s)?;
    let splits = aligned_splits(data, s);
    let num_base = partition.num_base() as u64;
    let part = partition;

    let job = JobBuilder::new("con")
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u64, f64>| {
            let (details, avg) = part.base_details_from_data(split.slice());
            for (local, &c) in details.iter().enumerate() {
                let global = part.local_to_global(split.id as usize, local + 1);
                ctx.emit(global as u64, c);
            }
            // Averages travel on reserved keys < R... they must not
            // collide with detail node ids (all ≥ R), so key = split id.
            ctx.emit(split.id as u64, avg);
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, f64>| {
            // Pass everything through; the top-B selection happens
            // driver-side so the averages (keys < R) can be transformed
            // into root coefficients first. The reducer still performs the
            // sort-merge, as in the paper's design.
            for v in vals {
                ctx.emit(*k, v);
            }
        });

    let (entries, metrics) = Pipeline::on(cluster)
        .stage(&job, &splits)?
        .then(|(_, pairs)| {
            let mut averages = vec![0.0; num_base as usize];
            let mut coeff_pairs: Vec<(u64, f64)> = Vec::with_capacity(n);
            for (k, v) in pairs {
                if k < num_base {
                    averages[k as usize] = v;
                } else {
                    coeff_pairs.push((k, v));
                }
            }
            let root = partition.root_coeffs_from_averages(&averages);
            coeff_pairs.extend(root.iter().enumerate().map(|(i, &c)| (i as u64, c)));
            super::top_b_by_normalized(coeff_pairs, n, b)
        })
        .finish();
    Ok((Synopsis::from_entries(n, entries)?, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::conventional::conventional_synopsis;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::transform::forward;

    #[test]
    fn matches_reference_across_slice_sizes() {
        let data: Vec<f64> = (0..128).map(|i| ((i * 7) % 41) as f64).collect();
        let expect = conventional_synopsis(&forward(&data).unwrap(), 10).unwrap();
        for s in [4usize, 16, 64, 128] {
            let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));
            let (syn, _) = con(&cluster, &data, 10, s).unwrap();
            assert_eq!(syn, expect, "slice size {s}");
        }
    }

    #[test]
    fn shuffle_is_linear_in_n() {
        let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));
        let (_, m) = con(&cluster, &data, 8, 32).unwrap();
        // Every coefficient crosses once: N records of (8-byte key +
        // 8-byte value).
        assert_eq!(m.jobs[0].shuffle_records, 256);
        assert_eq!(m.jobs[0].shuffle_bytes, 256 * 16);
    }
}
