//! H-WTopk (Appendix A.4, \[21\]): TPUT-style three-round distributed
//! top-k over signed partial coefficients.
//!
//! Works on L2-normalized partial coefficients so that "largest magnitude"
//! is the conventional-synopsis criterion. Each round is one MapReduce
//! job; mappers are stateless and recompute their local partials per round
//! (as Hadoop mappers re-read their input block):
//!
//! 1. every mapper sends its `k` highest and `k` lowest partials plus its
//!    k-th-value thresholds; the reducer forms lower bounds `τ(x)` and the
//!    first threshold `T1`;
//! 2. mappers send everything above `T1/m` in magnitude; the reducer
//!    refines upper/lower bounds, computes `T2`, and prunes the candidate
//!    set `L`;
//! 3. mappers send exact partials for all of `L`; the reducer aggregates
//!    and selects the final top-k.
//!
//! With `k = B = N/8` the first round alone ships `2kB`-scale traffic —
//! the cost blow-up the paper reports (it OOMs on their cluster); H-WTopk
//! only wins for tiny budgets (Figure 11).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::basis::partial_coefficients;
use dwmaxerr_wavelet::tree::TreeTopology;
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::splits::{block_splits, SliceSplit};

/// Reserved shuffle keys for per-mapper thresholds.
const KTH_HIGH: u64 = u64::MAX;
const KTH_LOW: u64 = u64::MAX - 1;

/// Result of an H-WTopk run, with the protocol's internals exposed for the
/// benchmark harness.
#[derive(Debug, Clone)]
pub struct HWTopkReport {
    /// The conventional B-term synopsis.
    pub synopsis: Synopsis,
    /// Candidate-set size after round-2 pruning.
    pub candidates: usize,
    /// Round-1 threshold on candidate magnitudes.
    pub t1: f64,
    /// Refined round-2 threshold.
    pub t2: f64,
    /// Metrics of the three rounds.
    pub metrics: DriverMetrics,
}

/// Local normalized partial coefficients of one block.
fn local_partials(n: usize, split: &SliceSplit) -> Vec<(u64, f64)> {
    let topo = TreeTopology::new(n).expect("power-of-two n");
    partial_coefficients(n, split.start(), split.slice())
        .into_iter()
        .map(|(node, v)| (node as u64, v * super::norm_factor(&topo, node)))
        .collect()
}

/// `τ(x)` from bounds: 0 when the signs disagree, else the smaller
/// magnitude.
fn tau(plus: f64, minus: f64) -> f64 {
    if plus.signum() != minus.signum() && plus != 0.0 && minus != 0.0 {
        0.0
    } else {
        plus.abs().min(minus.abs())
    }
}

/// The `k`-th largest value of a list (0 when the list is shorter).
fn kth_largest(mut values: Vec<f64>, k: usize) -> f64 {
    if values.len() < k || k == 0 {
        return 0.0;
    }
    values.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
    values[k - 1]
}

/// Runs H-WTopk with budget `b` over `parts` unaligned blocks.
pub fn hwtopk(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    parts: usize,
) -> Result<HWTopkReport, CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    if b == 0 {
        return Ok(HWTopkReport {
            synopsis: Synopsis::empty(n)?,
            candidates: 0,
            t1: 0.0,
            t2: 0.0,
            metrics: DriverMetrics::new(),
        });
    }
    let splits = block_splits(data, parts);
    let m = splits.len();
    // Appendix A.5: with k = B, round 1 collects 2k records from every
    // mapper at one reducer; beyond the per-task memory budget the job
    // genuinely cannot run (the paper's OOM at B = N/8, 8M+ points).
    let reducer_need = dwmaxerr_algos::memory::hwtopk_round1_reducer_bytes(m, b);
    if reducer_need > cluster.config().task_memory_bytes {
        return Err(CoreError::Runtime(
            dwmaxerr_runtime::RuntimeError::TaskOutOfMemory {
                needed: reducer_need,
                available: cluster.config().task_memory_bytes,
            },
        ));
    }
    // ---- Round 1: top/bottom k per mapper + thresholds ----
    let k = b;
    let r1 = JobBuilder::new("hwtopk-round1")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u64, (u32, f64)>| {
                let mut partials = local_partials(n, split);
                partials.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                let len = partials.len();
                let hi = k.min(len);
                let lo = k.min(len.saturating_sub(hi));
                for &(node, v) in &partials[..hi] {
                    ctx.emit(node, (split.id, v));
                }
                for &(node, v) in &partials[len - lo..] {
                    ctx.emit(node, (split.id, v));
                }
                let kth_high = if len >= k { partials[k - 1].1 } else { 0.0 };
                let kth_low = if len >= k { partials[len - k].1 } else { 0.0 };
                ctx.emit(KTH_HIGH, (split.id, kth_high));
                ctx.emit(KTH_LOW, (split.id, kth_low));
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(|key, vals, ctx: &mut ReduceContext<u64, (u32, f64)>| {
            for v in vals {
                ctx.emit(*key, v);
            }
        });
    let pipe = Pipeline::on(cluster)
        .stage(&r1, &splits)?
        .then(|(_, pairs)| {
            let mut kth_high = vec![0.0f64; m];
            let mut kth_low = vec![0.0f64; m];
            let mut seen: HashMap<u64, Vec<(u32, f64)>> = HashMap::new();
            for (key, (mapper, v)) in pairs {
                match key {
                    KTH_HIGH => kth_high[mapper as usize] = v,
                    KTH_LOW => kth_low[mapper as usize] = v,
                    node => seen.entry(node).or_default().push((mapper, v)),
                }
            }
            // τ(x) with round-1 bounds: non-senders bounded by their k-th
            // values (clamped by 0, since an unheld coefficient's partial is
            // exactly 0).
            let taus: Vec<f64> = seen
                .values()
                .map(|senders| {
                    let sent: HashSet<u32> = senders.iter().map(|&(j, _)| j).collect();
                    let exact: f64 = senders.iter().map(|&(_, v)| v).sum();
                    let mut plus = exact;
                    let mut minus = exact;
                    for j in 0..m as u32 {
                        if !sent.contains(&j) {
                            plus += kth_high[j as usize].max(0.0);
                            minus += kth_low[j as usize].min(0.0);
                        }
                    }
                    tau(plus, minus)
                })
                .collect();
            kth_largest(taus, k)
        });
    let t1 = *pipe.value();

    // ---- Round 2: everything above T1/m, refine, prune ----
    let threshold = t1 / m as f64;
    let r2 = JobBuilder::new("hwtopk-round2")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u64, (u32, f64)>| {
                let mut partials = local_partials(n, split);
                partials.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                let len = partials.len();
                let hi = k.min(len);
                let lo = k.min(len.saturating_sub(hi));
                for (idx, &(node, v)) in partials.iter().enumerate() {
                    // Union of round-1 emissions (top/bottom k) and the
                    // magnitude filter, so the reducer holds every value any
                    // round has shipped.
                    let in_round1 = idx < hi || idx >= len - lo;
                    // Strict `>` per the paper's Round 2; the round-1 union
                    // keeps every value the reducer has ever seen available
                    // for bound refinement.
                    if in_round1 || v.abs() > threshold {
                        ctx.emit(node, (split.id, v));
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(|key, vals, ctx: &mut ReduceContext<u64, (u32, f64)>| {
            for v in vals {
                ctx.emit(*key, v);
            }
        });
    let pipe = pipe.stage(&r2, &splits)?.then(|(_, pairs)| {
        let mut seen2: HashMap<u64, Vec<(u32, f64)>> = HashMap::new();
        for (node, (mapper, v)) in pairs {
            seen2.entry(node).or_default().push((mapper, v));
        }
        let bounds: HashMap<u64, (f64, f64)> = seen2
            .iter()
            .map(|(&node, senders)| {
                let sent: HashSet<u32> = senders.iter().map(|&(j, _)| j).collect();
                let exact: f64 = senders.iter().map(|&(_, v)| v).sum();
                let absent = (m - sent.len()) as f64;
                // Non-senders now bounded by ±T1/m.
                (
                    node,
                    (exact + absent * threshold, exact - absent * threshold),
                )
            })
            .collect();
        let t2 = kth_largest(bounds.values().map(|&(p, mi)| tau(p, mi)).collect(), k);
        let candidates: HashSet<u64> = bounds
            .iter()
            .filter(|(_, &(p, mi))| p.abs().max(mi.abs()) >= t2)
            .map(|(&node, _)| node)
            .collect();
        (t2, Arc::new(candidates))
    });
    let (t2, cand) = pipe.value().clone();

    // ---- Round 3: exact values for the candidate set ----
    // Raw (un-normalized) partials here: summing dyadic-rational raw
    // contributions reproduces the centralized transform bit-for-bit,
    // whereas normalizing each partial by 1/sqrt(2^l) before summation
    // would accumulate rounding error into the stored coefficients.
    let cand_map = Arc::clone(&cand);
    let r3 = JobBuilder::new("hwtopk-round3")
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u64, f64>| {
            for (node, v) in partial_coefficients(n, split.start(), split.slice()) {
                if cand_map.contains(&(node as u64)) {
                    ctx.emit(node as u64, v);
                }
            }
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|key, vals, ctx: &mut ReduceContext<u64, f64>| {
            ctx.emit(*key, vals.sum());
        });
    let ((_, pairs), metrics) = pipe.stage(&r3, &splits)?.finish();

    // Final top-k by normalized magnitude over the raw aggregates.
    let entries = super::top_b_by_normalized(pairs, n, b);
    Ok(HWTopkReport {
        synopsis: Synopsis::from_entries(n, entries)?,
        candidates: cand.len(),
        t1,
        t2,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::conventional::conventional_synopsis;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::transform::forward;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::with_slots(4, 2))
    }

    #[test]
    fn matches_reference_small_budget() {
        let data: Vec<f64> = (0..128)
            .map(|i| ((i * 17) % 53) as f64 + if i == 77 { 300.0 } else { 0.0 })
            .collect();
        for b in [1usize, 3, 8] {
            let expect = conventional_synopsis(&forward(&data).unwrap(), b).unwrap();
            let rep = hwtopk(&cluster(), &data, b, 6).unwrap();
            assert_eq!(rep.synopsis, expect, "b={b}");
            assert!(rep.t1 >= 0.0 && rep.t2 >= 0.0);
        }
    }

    #[test]
    fn pruning_shrinks_candidates_for_small_b() {
        let data: Vec<f64> = (0..256).map(|i| ((i * 31) % 97) as f64).collect();
        let rep = hwtopk(&cluster(), &data, 4, 8).unwrap();
        assert!(rep.candidates < 256, "candidates {}", rep.candidates);
        assert!(rep.candidates >= 4);
    }

    #[test]
    fn big_budget_blows_up_round1_traffic() {
        // The Figure-10 pathology: with k = B = N/8, round 1 alone ships
        // on the order of 2·k records per mapper.
        let data: Vec<f64> = (0..256).map(|i| (i % 19) as f64).collect();
        let b = 32;
        let rep = hwtopk(&cluster(), &data, b, 4).unwrap();
        let round1 = &rep.metrics.jobs[0];
        assert!(
            round1.shuffle_records as usize >= 4 * b,
            "round-1 records {}",
            round1.shuffle_records
        );
    }

    #[test]
    fn zero_budget() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let rep = hwtopk(&cluster(), &data, 0, 2).unwrap();
        assert_eq!(rep.synopsis.size(), 0);
        assert_eq!(rep.metrics.job_count(), 0);
    }

    #[test]
    fn tau_sign_logic() {
        assert_eq!(tau(5.0, 3.0), 3.0);
        assert_eq!(tau(-5.0, -3.0), 3.0);
        assert_eq!(tau(5.0, -3.0), 0.0);
        assert_eq!(tau(0.0, -3.0), 0.0);
    }

    #[test]
    fn kth_largest_behaviour() {
        assert_eq!(kth_largest(vec![3.0, 1.0, 2.0], 2), 2.0);
        assert_eq!(kth_largest(vec![3.0], 2), 0.0);
        assert_eq!(kth_largest(vec![], 1), 0.0);
    }
}
