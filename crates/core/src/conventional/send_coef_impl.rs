//! Send-Coef (Appendix A.3, \[21\]): basis-vector streaming over
//! unaligned blocks.
//!
//! Each mapper takes an HDFS-block-sized chunk (no power-of-two
//! alignment), and for every datum computes its contribution to each of
//! the `log N + 1` coefficients on its path (Algorithm 7). Coefficients
//! fully contained in the block are emitted complete; boundary
//! coefficients are emitted as one partial contribution per datapoint,
//! which the reducer aggregates — `O(S(log N - log S))` records per block.
//! Sub-tree locality is *not* preserved, which is exactly why CON beats it
//! by ~1.5× (Figure 10): mapper work is `O(S log N)` and boundary
//! coefficients cross the wire several times.

use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::basis::algorithm7_emissions;
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::splits::{block_splits, SliceSplit};

/// Runs Send-Coef with `parts` unaligned mapper blocks (Algorithm 7
/// verbatim: no map-side aggregation).
pub fn send_coef(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    parts: usize,
) -> Result<(Synopsis, DriverMetrics), CoreError> {
    send_coef_inner(cluster, data, b, parts, false)
}

/// Send-Coef with a Hadoop combiner folding each mapper's per-datapoint
/// partial contributions before the shuffle — the standard production fix
/// for Algorithm 7's `O(S(log N - log S))` communication, provided as an
/// ablation point.
pub fn send_coef_combined(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    parts: usize,
) -> Result<(Synopsis, DriverMetrics), CoreError> {
    send_coef_inner(cluster, data, b, parts, true)
}

fn send_coef_inner(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    parts: usize,
    with_combiner: bool,
) -> Result<(Synopsis, DriverMetrics), CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    let splits = block_splits(data, parts);

    let name = if with_combiner {
        "send-coef+combiner"
    } else {
        "send-coef"
    };
    let stage = JobBuilder::new(name)
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u64, f64>| {
            // Algorithm 7: fully-contained coefficients are emitted once,
            // complete; boundary coefficients are emitted per datapoint —
            // the O(S(logN - logS)) communication the paper analyses.
            for (node, value) in algorithm7_emissions(n, split.start(), split.slice()) {
                ctx.emit(node as u64, value);
            }
        })
        .input_bytes(SliceSplit::bytes);
    let stage = if with_combiner {
        stage.combine_with(|_k, vals: &mut dyn Iterator<Item = f64>| vals.sum())
    } else {
        stage
    };
    let job = stage.reduce(|k, vals, ctx: &mut ReduceContext<u64, f64>| {
        // Aggregate partial sums into the final coefficient.
        ctx.emit(*k, vals.sum());
    });

    let (entries, metrics) = Pipeline::on(cluster)
        .stage(&job, &splits)?
        .then(|(_, pairs)| super::top_b_by_normalized(pairs, n, b))
        .finish();
    Ok((Synopsis::from_entries(n, entries)?, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::conventional::conventional_synopsis;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::transform::forward;

    #[test]
    fn matches_reference_with_unaligned_blocks() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 5) % 17) as f64 * 1.5).collect();
        let expect = conventional_synopsis(&forward(&data).unwrap(), 9).unwrap();
        for parts in [1usize, 3, 7, 13] {
            let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));
            let (syn, _) = send_coef(&cluster, &data, 9, parts).unwrap();
            assert_eq!(syn, expect, "parts={parts}");
        }
    }

    #[test]
    fn combiner_same_synopsis_less_shuffle() {
        let data: Vec<f64> = (0..256).map(|i| ((i * 11) % 37) as f64).collect();
        let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));
        let (plain, m_plain) = send_coef(&cluster, &data, 12, 8).unwrap();
        let (combined, m_comb) = send_coef_combined(&cluster, &data, 12, 8).unwrap();
        assert_eq!(plain, combined);
        assert!(
            m_comb.total_shuffle_bytes() < m_plain.total_shuffle_bytes() / 2,
            "combiner should halve shuffle: {} vs {}",
            m_comb.total_shuffle_bytes(),
            m_plain.total_shuffle_bytes()
        );
    }

    #[test]
    fn boundary_coefficients_cross_multiple_times() {
        // With several unaligned blocks, high-level coefficients are
        // emitted partially by multiple mappers: shuffle records exceed N.
        let data: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));
        let (_, m) = send_coef(&cluster, &data, 8, 8).unwrap();
        assert!(
            m.jobs[0].shuffle_records > 128,
            "records {}",
            m.jobs[0].shuffle_records
        );
    }
}
