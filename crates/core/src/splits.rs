//! Input splits over a shared data array.
//!
//! Splits reference the dataset through an `Arc` rather than copying it —
//! the engine's mappers see exactly their slice, mirroring HDFS blocks,
//! while the driver pays no per-job duplication.

use std::sync::Arc;

/// One mapper's input: a contiguous slice of the dataset.
#[derive(Debug, Clone)]
pub struct SliceSplit {
    /// Split index (for aligned splits, the base sub-tree id).
    pub id: u32,
    data: Arc<Vec<f64>>,
    start: usize,
    len: usize,
}

impl SliceSplit {
    /// The slice this split covers.
    #[inline]
    pub fn slice(&self) -> &[f64] {
        &self.data[self.start..self.start + self.len]
    }

    /// Start offset in the full dataset.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Length of the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the slice is empty (never for well-formed splits).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical HDFS bytes of this split (8 bytes per value).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.len * 8) as u64
    }
}

/// Splits `data` into consecutive chunks of exactly `chunk` values
/// (`data.len()` must be divisible by `chunk`). Used by the
/// locality-preserving partitioning, where `chunk` is the base sub-tree
/// leaf count.
pub fn aligned_splits(data: &[f64], chunk: usize) -> Vec<SliceSplit> {
    assert!(
        chunk > 0 && data.len().is_multiple_of(chunk),
        "chunk must divide data length"
    );
    let shared = Arc::new(data.to_vec());
    (0..data.len() / chunk)
        .map(|j| SliceSplit {
            id: j as u32,
            data: Arc::clone(&shared),
            start: j * chunk,
            len: chunk,
        })
        .collect()
}

/// Splits `data` into `parts` nearly-equal chunks with no alignment
/// requirement — HDFS-block-style splits, as used by Send-Coef and
/// H-WTopk (Appendix A: "the block size does not need to be aligned to a
/// power of two").
pub fn block_splits(data: &[f64], parts: usize) -> Vec<SliceSplit> {
    assert!(parts > 0);
    let shared = Arc::new(data.to_vec());
    let n = data.len();
    let parts = parts.min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    (0..parts)
        .map(|j| {
            let len = base + usize::from(j < extra);
            let split = SliceSplit {
                id: j as u32,
                data: Arc::clone(&shared),
                start,
                len,
            };
            start += len;
            split
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_covers_everything() {
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let splits = aligned_splits(&data, 8);
        assert_eq!(splits.len(), 4);
        for (j, s) in splits.iter().enumerate() {
            assert_eq!(s.id as usize, j);
            assert_eq!(s.slice(), &data[j * 8..(j + 1) * 8]);
            assert_eq!(s.bytes(), 64);
        }
    }

    #[test]
    #[should_panic]
    fn aligned_rejects_misaligned() {
        aligned_splits(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn block_splits_cover_everything_unaligned() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let splits = block_splits(&data, 3);
        assert_eq!(splits.len(), 3);
        let total: usize = splits.iter().map(SliceSplit::len).sum();
        assert_eq!(total, 10);
        let mut rebuilt = Vec::new();
        for s in &splits {
            rebuilt.extend_from_slice(s.slice());
        }
        assert_eq!(rebuilt, data);
        // Sizes differ by at most 1.
        let sizes: Vec<usize> = splits.iter().map(SliceSplit::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn block_splits_more_parts_than_items() {
        let data = [1.0, 2.0];
        let splits = block_splits(&data, 5);
        assert_eq!(splits.len(), 2);
    }
}
