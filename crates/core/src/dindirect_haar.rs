//! DIndirectHaar (Algorithm 2): Problem 1 solved by binary search over
//! distributed DMHaarSpace probes.
//!
//! The search bounds come from two extra jobs, exactly as the paper
//! prescribes:
//!
//! * the **lower bound** is the (B+1)-largest coefficient magnitude —
//!   every worker emits its local coefficient magnitudes largest-first
//!   (top `min(B+1, S)` suffice: the global (B+1)-largest is always
//!   contained in the union of per-worker top-(B+1) lists) and a reducer
//!   merges them;
//! * the **upper bound** is the max-abs error of the conventional B-term
//!   synopsis, computed with [`crate::conventional::con`] and a
//!   distributed evaluation job.

use dwmaxerr_algos::indirect_haar::indirect_haar;
use dwmaxerr_algos::min_haar_space::{MhsError, MhsParams};
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::dmin_haar_space::{distributed_max_abs, dmin_haar_space, DmhsConfig};
use crate::error::CoreError;
use crate::partition::BasePartition;
use crate::splits::{aligned_splits, SliceSplit};

/// DIndirectHaar configuration.
#[derive(Debug, Clone)]
pub struct DIndirectHaarConfig {
    /// Quantization step δ (the paper's tuning knob; Figure 6).
    pub delta: f64,
    /// Probe configuration (partitioning of each DMHaarSpace job chain).
    pub probe: DmhsConfig,
}

impl Default for DIndirectHaarConfig {
    fn default() -> Self {
        DIndirectHaarConfig {
            delta: 1.0,
            probe: DmhsConfig::default(),
        }
    }
}

/// Result of a DIndirectHaar run.
#[derive(Debug, Clone)]
pub struct DIndirectHaarResult {
    /// Best synopsis within the budget.
    pub synopsis: Synopsis,
    /// Its actual max-abs error.
    pub error: f64,
    /// Number of DMHaarSpace probes (each a full job chain).
    pub probes: usize,
    /// Metrics across every job of every probe plus the bound jobs.
    pub metrics: DriverMetrics,
}

/// Runs DIndirectHaar over `data` with budget `b`.
pub fn dindirect_haar(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    cfg: &DIndirectHaarConfig,
) -> Result<DIndirectHaarResult, CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    let s = cfg.probe.base_leaves.clamp(2, n);
    let partition = BasePartition::new(n, s)?;
    let splits = aligned_splits(data, s);

    // ---- Lower bound (Algorithm 2 line 2): the (B+1)-largest coefficient
    // magnitude. Base workers emit their top `min(B+1, S-1)` detail
    // magnitudes largest-first (the global (B+1)-largest is always in the
    // union of per-worker top-(B+1) lists); the driver adds the root
    // sub-tree's and merges.
    let keep = b + 1;
    let part = partition;
    let lb_job = JobBuilder::new("dih-lower-bound")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u8, (f64, f64)>| {
                let (details, avg) = part.base_details_from_data(split.slice());
                let mut mags: Vec<f64> = details.iter().map(|c| c.abs()).collect();
                mags.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
                mags.truncate(keep);
                for m in mags {
                    ctx.emit(0, (m, 0.0));
                }
                // Ship the slice average so the driver can form the root
                // sub-tree coefficients (tag via the second slot).
                ctx.emit(1, (avg, split.id as f64));
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u8, (f64, f64)>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let pipe = Pipeline::on(cluster)
        .stage(&lb_job, &splits)?
        .then(|(_, pairs)| {
            let mut mags: Vec<f64> = Vec::new();
            let mut averages = vec![0.0; partition.num_base()];
            for (k, (value, tag)) in pairs {
                if k == 0 {
                    mags.push(value);
                } else {
                    averages[tag as usize] = value;
                }
            }
            let root = partition.root_coeffs_from_averages(&averages);
            mags.extend(root.iter().map(|c| c.abs()));
            mags.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
            if keep <= mags.len() {
                mags[keep - 1]
            } else {
                0.0
            }
        });
    let e_l = *pipe.value();

    // ---- Upper bound (Algorithm 2 line 1): CON's max-abs error ----
    let (conv_syn, conv_metrics) = crate::conventional::con(cluster, data, b, s)?;
    let (e_u, eval_metrics) = distributed_max_abs(cluster, &splits, &conv_syn)?;
    let pipe = pipe.absorb(conv_metrics).record(eval_metrics);

    // ---- Binary search with DMHaarSpace probes ----
    // Each probe is a full sub-pipeline; its ledger folds into this one.
    let mut probe_metrics = DriverMetrics::new();
    let report = indirect_haar(b, e_l, e_u, cfg.delta, |eps| {
        let params = match MhsParams::new(eps.max(0.0), cfg.delta) {
            Ok(p) => p,
            Err(_) => return Ok(None),
        };
        match dmin_haar_space(cluster, data, &params, &cfg.probe) {
            Ok(res) => {
                probe_metrics.merge(res.metrics);
                Ok(Some((res.synopsis, res.actual_error)))
            }
            Err(CoreError::Mhs(MhsError::DeltaTooCoarse)) => Ok(None),
            Err(e) => Err(e),
        }
    })?;
    let metrics = pipe.absorb(probe_metrics).into_metrics();

    Ok(DIndirectHaarResult {
        synopsis: report.synopsis,
        error: report.error,
        probes: report.probes,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::indirect_haar::indirect_haar_centralized;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::metrics::max_abs;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    #[test]
    fn matches_centralized_indirect_haar() {
        let data: Vec<f64> = (0..64)
            .map(|i| ((i * 31) % 19) as f64 * 2.0 + if i == 7 { 44.0 } else { 0.0 })
            .collect();
        let cfg = DIndirectHaarConfig {
            delta: 0.5,
            probe: DmhsConfig {
                base_leaves: 8,
                fan_in: 2,
            },
        };
        for b in [4usize, 8, 16] {
            let dist = dindirect_haar(&test_cluster(), &data, b, &cfg).unwrap();
            let central = indirect_haar_centralized(&data, b, 0.5).unwrap();
            assert!(dist.synopsis.size() <= b);
            let actual = max_abs(&data, &dist.synopsis.reconstruct_all());
            assert!((actual - dist.error).abs() < 1e-9);
            // Both run the same search over the same quantized space; allow
            // one quantum of slack for bound differences.
            assert!(
                (dist.error - central.error).abs() <= 0.5 + 1e-9,
                "b={b}: distributed {} vs centralized {}",
                dist.error,
                central.error
            );
        }
    }

    #[test]
    fn budget_is_respected_and_probes_counted() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64 * 7.3) % 29.0).collect();
        let cfg = DIndirectHaarConfig {
            delta: 1.0,
            probe: DmhsConfig {
                base_leaves: 8,
                fan_in: 2,
            },
        };
        let res = dindirect_haar(&test_cluster(), &data, 6, &cfg).unwrap();
        assert!(res.synopsis.size() <= 6);
        assert!(res.probes >= 1);
        assert!(
            res.metrics.job_count() > res.probes,
            "bounds jobs counted too"
        );
    }

    #[test]
    fn smaller_delta_is_at_least_as_accurate() {
        // Figure 6's knob: smaller δ examines more candidates and can only
        // improve quality.
        let data: Vec<f64> = (0..32)
            .map(|i| if i % 5 == 0 { 50.0 } else { (i % 7) as f64 })
            .collect();
        let b = 6;
        let run = |delta: f64| {
            let cfg = DIndirectHaarConfig {
                delta,
                probe: DmhsConfig {
                    base_leaves: 8,
                    fan_in: 2,
                },
            };
            dindirect_haar(&test_cluster(), &data, b, &cfg)
                .unwrap()
                .error
        };
        let fine = run(0.25);
        let coarse = run(4.0);
        assert!(
            fine <= coarse + 1e-9,
            "finer delta worse: {fine} vs {coarse}"
        );
    }
}
