#![deny(missing_docs)]

//! The paper's contribution: distributed wavelet thresholding for maximum
//! error metrics (SIGMOD'16).
//!
//! * [`partition`] — the locality-preserving error-tree partitioning that
//!   underlies everything (Section 4, Figures 3-4).
//! * [`mod@dgreedy_abs`] / [`mod@dgreedy_rel`] — the distributed greedy algorithms
//!   (Section 5, Algorithms 3-6).
//! * [`mod@dmin_haar_space`] — DMHaarSpace, the distributed DP probe built
//!   from the Section-4 framework (Algorithm 1).
//! * [`mod@dindirect_haar`] — DIndirectHaar, binary search over DMHaarSpace
//!   probes (Algorithm 2).
//! * [`conventional`] — the parallel conventional-synopsis baselines of
//!   Appendix A: CON, Send-V, Send-Coef, H-WTopk.
//!
//! # Module map
//!
//! | Module                 | Role |
//! |------------------------|------|
//! | [`partition`]          | Locality-preserving error-tree partitioning: base partitions and [`LayerPlan`] |
//! | [`splits`]             | Typed split payloads shipped to map tasks across all algorithms |
//! | [`mod@dgreedy_abs`]    | DGreedyAbs: distributed greedy, max-abs error (Algorithms 3-4) |
//! | [`mod@dgreedy_rel`]    | DGreedyRel: relative-error variant (Algorithms 5-6) |
//! | [`mod@dmin_haar_space`]| DMHaarSpace: distributed quantized DP probe (Algorithm 1) |
//! | [`mod@dindirect_haar`] | DIndirectHaar: binary search over DMHaarSpace probes (Algorithm 2) |
//! | [`mod@dhaar_plus`]     | DHaarPlus: the Haar+ tree variant of the layered framework |
//! | [`mod@dmin_rel_var`]   | DMinRelVar: relative-variance DP on the layered framework |
//! | [`conventional`]       | Appendix-A baselines: CON, Send-V, Send-Coef(-combined), H-WTopk |
//! | [`progressive`]        | Streaming windows, incremental CON/DGreedyAbs maintenance, phased serving driver |
//! | [`query`]              | Bounded point/range-sum query API: every answer carries its error guarantee |
//! | [`error`]              | [`CoreError`]: algorithm-level failures wrapping runtime errors |

pub mod conventional;
pub mod dgreedy_abs;
pub mod dgreedy_rel;
pub mod dhaar_plus;
pub mod dindirect_haar;
pub mod dmin_haar_space;
pub mod dmin_rel_var;
pub mod error;
pub mod partition;
pub mod progressive;
pub mod query;
pub mod splits;

pub use dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig, DGreedyAbsResult};
pub use dgreedy_rel::{dgreedy_rel, DGreedyRelConfig, DGreedyRelResult};
pub use dhaar_plus::{dhaar_plus, DhpConfig, DhpResult};
pub use dindirect_haar::{dindirect_haar, DIndirectHaarConfig, DIndirectHaarResult};
pub use dmin_haar_space::{dmin_haar_space, DmhsConfig, DmhsResult};
pub use dmin_rel_var::{dmin_rel_var, DmrvConfig, DmrvResult};
pub use error::CoreError;
pub use partition::{BasePartition, LayerPlan};
pub use progressive::{
    IncrementalConventional, IncrementalDGreedyAbs, PhasedSynopsisDriver, ServedSynopsis,
    StreamWindow, TickReport,
};
pub use query::{point_answer, range_answer, range_bound, Answer, ErrorBound, RelBound};
