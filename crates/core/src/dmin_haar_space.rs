//! DMHaarSpace: the distributed MinHaarSpace probe built from the
//! Section-4 framework (Algorithm 1 plus the top-down extraction pass).
//!
//! **Bottom-up phase.** Layer 0's workers each own a base data slice,
//! run the MinHaarSpace DP locally and emit the M-row of their local root
//! (`O(ε/δ)` cells — Eq. 6's communication bound). Upper layers group
//! `fan_in` sibling rows per worker (the locality-preserving partitioning)
//! and combine them into the next row, until the row of node `c_1`
//! remains; the driver then resolves the root (`c_0`) assignment.
//!
//! **Top-down phase.** Workers are stateless between jobs (as in Hadoop),
//! so the extraction re-enters each sub-problem exactly as the paper
//! describes ("we re-enter the sub-problem of the topmost sub-tree"):
//! every layer's workers recompute their local rows, replay the optimal
//! choices for their assigned incoming value, emit the retained
//! coefficients, and forward incoming values to their children in the
//! next job.

use std::collections::HashMap;
use std::sync::Arc;

use dwmaxerr_algos::min_haar_space::{subtree_rows, MhsError, MhsParams, Row, INFEASIBLE};
use dwmaxerr_runtime::codec::{CodecError, Wire};
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::splits::{aligned_splits, SliceSplit};

/// Wire wrapper for DP rows (the `M[j]` messages of Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow(pub Row);

impl Wire for WireRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.lo.encode(buf);
        self.0.costs.encode(buf);
        self.0.choices.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WireRow(Row {
            lo: i64::decode(buf)?,
            costs: Vec::<u32>::decode(buf)?,
            choices: Vec::<i32>::decode(buf)?,
        }))
    }
}

/// DMHaarSpace configuration.
#[derive(Debug, Clone)]
pub struct DmhsConfig {
    /// Leaves per bottom-layer sub-tree (power of two).
    pub base_leaves: usize,
    /// Rows combined per upper-layer worker (`2^h`; power of two ≥ 2).
    pub fan_in: usize,
}

impl Default for DmhsConfig {
    fn default() -> Self {
        DmhsConfig {
            base_leaves: 1 << 12,
            fan_in: 1 << 4,
        }
    }
}

/// Result of a DMHaarSpace run.
#[derive(Debug, Clone)]
pub struct DmhsResult {
    /// The unrestricted synopsis meeting the ε bound.
    pub synopsis: Synopsis,
    /// Retained coefficient count.
    pub size: usize,
    /// True max-abs error (≤ ε), measured by a distributed evaluation job.
    pub actual_error: f64,
    /// Metrics of all jobs in the probe.
    pub metrics: DriverMetrics,
}

/// A group of sibling rows for an upper-layer worker.
#[derive(Debug, Clone)]
struct RowGroup {
    /// Global node id of the first row.
    first: u64,
    rows: Vec<Row>,
}

/// Global node id of mini-tree-internal node `local` for a worker whose
/// input rows start at global node `first` with `fan_in` rows.
fn mini_to_global(first: u64, fan_in: usize, local: usize) -> u64 {
    let root = first / fan_in as u64;
    let depth = usize::BITS - 1 - local.leading_zeros();
    (root << depth) + (local as u64 - (1u64 << depth))
}

/// Combines `fan_in` sibling rows into all internal rows of the worker's
/// mini-tree (`rows[1]` = the mini root; index 0 unused). `input[i]` is the
/// row of global node `first + i`.
fn mini_tree_rows(input: &[Row]) -> Vec<Row> {
    let f = input.len();
    debug_assert!(f.is_power_of_two() && f >= 2);
    let empty = Row {
        lo: 0,
        costs: Vec::new(),
        choices: Vec::new(),
    };
    let mut rows = vec![empty; f];
    for i in (1..f).rev() {
        rows[i] = if 2 * i < f {
            let (l, r) = rows.split_at(2 * i + 1);
            dwmaxerr_algos::min_haar_space::combine(&l[2 * i], &r[0])
        } else {
            let base = (i - f / 2) * 2;
            dwmaxerr_algos::min_haar_space::combine(&input[base], &input[base + 1])
        };
    }
    rows
}

/// Sentinel node id used by mappers to signal quantization infeasibility.
const FAIL_NODE: u64 = u64::MAX;

/// Runs the DMHaarSpace probe: the minimal-size unrestricted synopsis with
/// max-abs error ≤ `params.epsilon` under δ-quantization, computed through
/// layered MapReduce jobs.
pub fn dmin_haar_space(
    cluster: &Cluster,
    data: &[f64],
    params: &MhsParams,
    cfg: &DmhsConfig,
) -> Result<DmhsResult, CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    let s = cfg.base_leaves.clamp(2, n);
    let fan_in = cfg.fan_in.max(2);
    if !s.is_power_of_two() || !fan_in.is_power_of_two() {
        return Err(CoreError::Protocol(
            "base_leaves and fan_in must be powers of two",
        ));
    }
    if n < 2 {
        // Trivial: delegate to the centralized solver.
        let sol = dwmaxerr_algos::min_haar_space::min_haar_space(data, params)?;
        return Ok(DmhsResult {
            size: sol.size,
            actual_error: sol.actual_error,
            synopsis: sol.synopsis,
            metrics: DriverMetrics::new(),
        });
    }
    let splits = aligned_splits(data, s);
    let num_base = n / s;
    let p = *params;

    // ---- Bottom-up: layer 0 (base slices -> base-root rows) ----
    let base_job = JobBuilder::new("dmhs-layer0")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u64, WireRow>| {
                match subtree_rows(split.slice(), &p) {
                    Ok(rows) => {
                        // Global id of this base sub-tree's root node.
                        ctx.emit(num_base as u64 + split.id as u64, WireRow(rows[1].clone()));
                    }
                    Err(_) => {
                        ctx.emit(
                            FAIL_NODE,
                            WireRow(Row {
                                lo: 0,
                                costs: vec![INFEASIBLE],
                                choices: vec![0],
                            }),
                        );
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .task_memory(move |s: &SliceSplit| {
            dwmaxerr_algos::memory::min_haar_space_bytes(s.len(), p.epsilon, p.delta)
        })
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, WireRow>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let mut pipe = Pipeline::on(cluster).stage(&base_job, &splits)?.try_then(
        |(_, pairs)| -> Result<Vec<(u64, Row)>, CoreError> {
            let mut layer: Vec<(u64, Row)> =
                pairs.into_iter().map(|(k, WireRow(r))| (k, r)).collect();
            if layer.iter().any(|(k, _)| *k == FAIL_NODE) {
                return Err(CoreError::Mhs(MhsError::DeltaTooCoarse));
            }
            layer.sort_unstable_by_key(|&(k, _)| k);
            Ok(layer)
        },
    )?;

    // Remember every layer's rows for the top-down pass.
    let mut boundaries: Vec<Vec<(u64, Row)>> = vec![pipe.value().clone()];

    // ---- Bottom-up: upper layers ----
    while pipe.value().len() > 1 {
        let layer = pipe.value();
        let f = fan_in.min(layer.len());
        let groups: Vec<RowGroup> = layer
            .chunks(f)
            .map(|chunk| RowGroup {
                first: chunk[0].0,
                rows: chunk.iter().map(|(_, r)| r.clone()).collect(),
            })
            .collect();
        let up_job = JobBuilder::new("dmhs-layer-up")
            .map(
                move |group: &RowGroup, ctx: &mut MapContext<u64, WireRow>| {
                    let rows = mini_tree_rows(&group.rows);
                    let parent = group.first / f as u64;
                    if rows[1].all_infeasible() {
                        ctx.emit(FAIL_NODE, WireRow(rows[1].clone()));
                    } else {
                        ctx.emit(parent, WireRow(rows[1].clone()));
                    }
                },
            )
            .input_bytes(|g: &RowGroup| {
                g.rows.iter().map(|r| (16 + r.costs.len() * 8) as u64).sum()
            })
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, WireRow>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
        pipe = pipe.stage(&up_job, &groups)?.try_then(
            |(_, pairs)| -> Result<Vec<(u64, Row)>, CoreError> {
                let mut layer: Vec<(u64, Row)> =
                    pairs.into_iter().map(|(k, WireRow(r))| (k, r)).collect();
                if layer.iter().any(|(k, _)| *k == FAIL_NODE) {
                    return Err(CoreError::Mhs(MhsError::DeltaTooCoarse));
                }
                layer.sort_unstable_by_key(|&(k, _)| k);
                boundaries.push(layer.clone());
                Ok(layer)
            },
        )?;
    }

    // ---- Root resolution (driver): choose c_0's value z0 ----
    let layer = pipe.value();
    let root_row = &layer[0].1;
    debug_assert_eq!(layer[0].0, 1);
    let mut best_total = INFEASIBLE;
    let mut best_z0 = 0i64;
    for t in 0..root_row.costs.len() {
        let v = root_row.lo + t as i64;
        let c = root_row.costs[t];
        if c == INFEASIBLE {
            continue;
        }
        let total = c + u32::from(v != 0);
        if total < best_total || (total == best_total && v == 0) {
            best_total = total;
            best_z0 = v;
        }
    }
    if best_total == INFEASIBLE {
        return Err(CoreError::Mhs(MhsError::DeltaTooCoarse));
    }

    // ---- Top-down extraction ----
    let mut pipe = pipe.then(|_| ());
    let mut entries: Vec<(u32, f64)> = Vec::new();
    if best_z0 != 0 {
        entries.push((0u32, best_z0 as f64 * params.delta));
    }
    // incoming[node] = grid value entering that node's sub-problem.
    let mut incoming: HashMap<u64, i64> = HashMap::new();
    incoming.insert(1, best_z0);

    // Recompute the bottom-up grouping (the driver kept each layer's rows
    // in `boundaries`), then process groups in top-down order.
    let mut group_stack: Vec<Vec<RowGroup>> = Vec::new();
    {
        let mut rows_at = boundaries[0].clone();
        while rows_at.len() > 1 {
            let f = fan_in.min(rows_at.len());
            let groups: Vec<RowGroup> = rows_at
                .chunks(f)
                .map(|chunk| RowGroup {
                    first: chunk[0].0,
                    rows: chunk.iter().map(|(_, r)| r.clone()).collect(),
                })
                .collect();
            let next: Vec<(u64, Row)> = groups
                .iter()
                .map(|g| {
                    (
                        g.first / g.rows.len() as u64,
                        mini_tree_rows(&g.rows)[1].clone(),
                    )
                })
                .collect();
            group_stack.push(groups);
            rows_at = next;
        }
    }
    for groups in group_stack.into_iter().rev() {
        // Attach each group's incoming value.
        let tagged: Vec<(RowGroup, i64)> = groups
            .into_iter()
            .map(|g| {
                let parent = g.first / g.rows.len() as u64;
                let v = *incoming
                    .get(&parent)
                    .expect("incoming value for every group root");
                (g, v)
            })
            .collect();
        let extract_job = JobBuilder::new("dmhs-extract")
            .map(
                move |(group, v_root): &(RowGroup, i64),
                      ctx: &mut MapContext<u64, (i64, u32, f64)>| {
                    let f = group.rows.len();
                    let rows = mini_tree_rows(&group.rows);
                    // Replay choices down the mini-tree.
                    let mut stack = vec![(1usize, *v_root)];
                    while let Some((i, v)) = stack.pop() {
                        let z = rows[i].choice(v);
                        if z != 0 {
                            let g = mini_to_global(group.first, f, i);
                            // key = child marker 0 means "synopsis entry".
                            ctx.emit(g, (0, 1, f64::from(z)));
                        }
                        if 2 * i < f {
                            stack.push((2 * i, v + i64::from(z)));
                            stack.push((2 * i + 1, v - i64::from(z)));
                        } else {
                            let base = (i - f / 2) * 2;
                            let left_child = group.first + base as u64;
                            ctx.emit(left_child, (v + i64::from(z), 0, 0.0));
                            ctx.emit(left_child + 1, (v - i64::from(z), 0, 0.0));
                        }
                    }
                },
            )
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, (i64, u32, f64)>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
        pipe = pipe.stage(&extract_job, &tagged)?.then(|(_, pairs)| {
            for (node, (v, tag, z)) in pairs {
                if tag == 1 {
                    entries.push((node as u32, z * params.delta));
                } else {
                    incoming.insert(node, v);
                }
            }
        });
    }

    // ---- Base layer extraction ----
    let base_incoming: Vec<i64> = (0..num_base)
        .map(|j| {
            *incoming
                .get(&(num_base as u64 + j as u64))
                .expect("incoming value for every base root")
        })
        .collect();
    let base_incoming = Arc::new(base_incoming);
    let bi = Arc::clone(&base_incoming);
    let base_extract_job = JobBuilder::new("dmhs-extract-base")
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u64, f64>| {
            let rows = subtree_rows(split.slice(), &p).expect("phase A succeeded");
            let m = split.len();
            let v0 = bi[split.id as usize];
            let mut stack = vec![(1usize, v0)];
            while let Some((i, v)) = stack.pop() {
                let z = rows[i].choice(v);
                if z != 0 {
                    // Global id within base sub-tree: heap self-similarity.
                    let depth = usize::BITS - 1 - i.leading_zeros();
                    let root = num_base as u64 + split.id as u64;
                    let g = (root << depth) + (i as u64 - (1u64 << depth));
                    ctx.emit(g, f64::from(z) * p.delta);
                }
                if 2 * i < m {
                    stack.push((2 * i, v + i64::from(z)));
                    stack.push((2 * i + 1, v - i64::from(z)));
                }
            }
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, f64>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let pipe = pipe.stage(&base_extract_job, &splits)?.try_then(
        |(_, pairs)| -> Result<Synopsis, CoreError> {
            for (node, value) in pairs {
                entries.push((node as u32, value));
            }
            debug_assert_eq!(entries.len(), best_total as usize);
            Ok(Synopsis::from_entries(n, std::mem::take(&mut entries))?)
        },
    )?;

    // ---- Distributed evaluation of the actual error ----
    let (actual_error, eval_metrics) = distributed_max_abs(pipe.cluster(), &splits, pipe.value())?;
    let (synopsis, metrics) = pipe.record(eval_metrics).finish();

    Ok(DmhsResult {
        size: synopsis.size(),
        synopsis,
        actual_error,
        metrics,
    })
}

/// Distributed max-abs evaluation: every worker reconstructs its slice
/// from a broadcast synopsis and emits its local maximum; one reducer
/// takes the global max. (Also used to compute DIndirectHaar's upper
/// bound, Algorithm 2 line 1.)
pub fn distributed_max_abs(
    cluster: &Cluster,
    splits: &[SliceSplit],
    synopsis: &Synopsis,
) -> Result<(f64, dwmaxerr_runtime::JobMetrics), CoreError> {
    let syn = Arc::new(synopsis.clone());
    let out = JobBuilder::new("eval-max-abs")
        .map(move |split: &SliceSplit, ctx: &mut MapContext<u8, f64>| {
            let mut local_max = 0.0f64;
            for (off, &d) in split.slice().iter().enumerate() {
                let approx = syn.reconstruct_value(split.start() + off);
                local_max = local_max.max((approx - d).abs());
            }
            ctx.emit(0, local_max);
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|_k, vals, ctx: &mut ReduceContext<u8, f64>| {
            ctx.emit(0, vals.fold(0.0, f64::max));
        })
        .run(cluster, splits)?;
    let err = out
        .pairs
        .first()
        .map(|&(_, e)| e)
        .ok_or(CoreError::Protocol("evaluation job produced no output"))?;
    Ok((err, out.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::min_haar_space::min_haar_space;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::metrics::max_abs;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    fn run(data: &[f64], eps: f64, delta: f64, s: usize, f: usize) -> DmhsResult {
        let params = MhsParams::new(eps, delta).unwrap();
        let cfg = DmhsConfig {
            base_leaves: s,
            fan_in: f,
        };
        dmin_haar_space(&test_cluster(), data, &params, &cfg).unwrap()
    }

    #[test]
    fn matches_centralized_solver() {
        let data: Vec<f64> = (0..64)
            .map(|i| ((i * 29) % 17) as f64 * 2.0 + if i == 40 { 60.0 } else { 0.0 })
            .collect();
        for eps in [2.0, 5.0, 10.0, 25.0] {
            let params = MhsParams::new(eps, 0.5).unwrap();
            let central = min_haar_space(&data, &params).unwrap();
            let dist = run(&data, eps, 0.5, 8, 2);
            assert_eq!(
                dist.size, central.size,
                "eps={eps}: distributed {} vs centralized {}",
                dist.size, central.size
            );
            assert!(dist.actual_error <= eps + 1e-9);
            let direct = max_abs(&data, &dist.synopsis.reconstruct_all());
            assert!((direct - dist.actual_error).abs() < 1e-9);
        }
    }

    #[test]
    fn fan_in_and_subtree_size_do_not_change_result() {
        let data: Vec<f64> = (0..128).map(|i| ((i * 13) % 37) as f64).collect();
        let sizes = [(4usize, 2usize), (8, 4), (16, 2), (32, 8)];
        let results: Vec<usize> = sizes
            .iter()
            .map(|&(s, f)| run(&data, 4.0, 0.5, s, f).size)
            .collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "partitioning changed the result: {results:?}");
        }
    }

    #[test]
    fn detects_delta_too_coarse() {
        let data: Vec<f64> = (0..16).map(|i| i as f64 + 0.45).collect();
        let params = MhsParams::new(0.4, 1.0).unwrap();
        let cfg = DmhsConfig {
            base_leaves: 4,
            fan_in: 2,
        };
        let res = dmin_haar_space(&test_cluster(), &data, &params, &cfg);
        assert!(matches!(res, Err(CoreError::Mhs(MhsError::DeltaTooCoarse))));
    }

    #[test]
    fn single_base_subtree() {
        let data: Vec<f64> = (0..16).map(|i| (i as f64 * 3.0) % 11.0).collect();
        let dist = run(&data, 3.0, 0.5, 16, 2);
        let central = min_haar_space(&data, &MhsParams::new(3.0, 0.5).unwrap()).unwrap();
        assert_eq!(dist.size, central.size);
    }

    #[test]
    fn wire_row_roundtrip() {
        let row = Row {
            lo: -5,
            costs: vec![1, 2, INFEASIBLE],
            choices: vec![0, -3, 7],
        };
        let mut buf = Vec::new();
        WireRow(row.clone()).encode(&mut buf);
        let mut s = buf.as_slice();
        let back = WireRow::decode(&mut s).unwrap();
        assert_eq!(back.0, row);
        assert!(s.is_empty());
    }

    #[test]
    fn mini_tree_global_ids() {
        // Rows for nodes 8..12 (fan_in 4): mini root = node 2, its children
        // nodes 4 and 5.
        assert_eq!(mini_to_global(8, 4, 1), 2);
        assert_eq!(mini_to_global(8, 4, 2), 4);
        assert_eq!(mini_to_global(8, 4, 3), 5);
    }
}
