//! DHaarPlus: the Section-4 framework applied to the Haar+ DP \[23\] —
//! the third DP family run through the same locality-preserving layer
//! decomposition (after DMHaarSpace and DMinRelVar), substantiating the
//! paper's claim that the framework parallelizes *all* the existing DP
//! algorithms for the problem.
//!
//! Identical phasing to [`mod@crate::dmin_haar_space`]: base workers solve
//! their slice bottom-up and emit the local root's row; upper layers
//! combine `fan_in` sibling rows; the driver resolves the top node; a
//! top-down pass re-enters each sub-problem and replays the triad choices.

use std::collections::HashMap;
use std::sync::Arc;

use dwmaxerr_algos::haar_plus::{
    combine, subtree_rows, HaarPlusError, HaarPlusSynopsis, HpRow, Role,
};
use dwmaxerr_algos::min_haar_space::MhsParams;
use dwmaxerr_runtime::codec::{CodecError, Wire};
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};

use crate::error::CoreError;
use crate::splits::{aligned_splits, SliceSplit};

impl From<HaarPlusError> for CoreError {
    fn from(e: HaarPlusError) -> Self {
        match e {
            HaarPlusError::DeltaTooCoarse => {
                CoreError::Mhs(dwmaxerr_algos::min_haar_space::MhsError::DeltaTooCoarse)
            }
            HaarPlusError::Wavelet(w) => CoreError::Wavelet(w),
        }
    }
}

/// Wire wrapper for Haar+ rows.
#[derive(Debug, Clone, PartialEq)]
pub struct WireHpRow(pub HpRow);

impl Wire for WireHpRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.lo.encode(buf);
        self.0.costs.encode(buf);
        self.0.shift_l.encode(buf);
        self.0.shift_r.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WireHpRow(HpRow {
            lo: i64::decode(buf)?,
            costs: Vec::<u32>::decode(buf)?,
            shift_l: Vec::<i32>::decode(buf)?,
            shift_r: Vec::<i32>::decode(buf)?,
        }))
    }
}

/// DHaarPlus configuration (same shape as the other framework instances).
#[derive(Debug, Clone)]
pub struct DhpConfig {
    /// Leaves per bottom-layer sub-tree (power of two).
    pub base_leaves: usize,
    /// Rows combined per upper-layer worker (power of two ≥ 2).
    pub fan_in: usize,
}

impl Default for DhpConfig {
    fn default() -> Self {
        DhpConfig {
            base_leaves: 1 << 12,
            fan_in: 1 << 4,
        }
    }
}

/// Result of a DHaarPlus run.
#[derive(Debug, Clone)]
pub struct DhpResult {
    /// The Haar+ synopsis.
    pub synopsis: HaarPlusSynopsis,
    /// Retained node count.
    pub size: usize,
    /// True max-abs error (≤ ε).
    pub actual_error: f64,
    /// Job metrics.
    pub metrics: DriverMetrics,
}

#[derive(Debug, Clone)]
struct RowGroup {
    first: u64,
    rows: Vec<HpRow>,
}

fn mini_tree_rows(input: &[HpRow]) -> Vec<HpRow> {
    let f = input.len();
    debug_assert!(f.is_power_of_two() && f >= 2);
    let empty = HpRow {
        lo: 0,
        costs: Vec::new(),
        shift_l: Vec::new(),
        shift_r: Vec::new(),
    };
    let mut rows = vec![empty; f];
    for i in (1..f).rev() {
        rows[i] = if 2 * i < f {
            let (l, r) = rows.split_at(2 * i + 1);
            combine(&l[2 * i], &r[0])
        } else {
            let base = (i - f / 2) * 2;
            combine(&input[base], &input[base + 1])
        };
    }
    rows
}

/// Decomposes a triad's chosen shifts into synopsis entries.
fn triad_entries(node: u32, a: i64, b: i64, delta: f64, out: &mut Vec<(u32, Role, f64)>) {
    if a == 0 && b == 0 {
        return;
    }
    if a == -b {
        out.push((node, Role::Head, a as f64 * delta));
    } else {
        if a != 0 {
            out.push((node, Role::LeftSupp, a as f64 * delta));
        }
        if b != 0 {
            out.push((node, Role::RightSupp, b as f64 * delta));
        }
    }
}

/// Runs the distributed Haar+ Problem-2 solve.
pub fn dhaar_plus(
    cluster: &Cluster,
    data: &[f64],
    params: &MhsParams,
    cfg: &DhpConfig,
) -> Result<DhpResult, CoreError> {
    let n = data.len();
    dwmaxerr_wavelet::error::ensure_pow2(n)?;
    let s = cfg.base_leaves.clamp(2, n);
    let fan_in = cfg.fan_in.max(2);
    if !s.is_power_of_two() || !fan_in.is_power_of_two() {
        return Err(CoreError::Protocol(
            "base_leaves and fan_in must be powers of two",
        ));
    }
    if n < s.max(4) {
        let sol = dwmaxerr_algos::haar_plus::haar_plus_min_space(data, params)?;
        return Ok(DhpResult {
            size: sol.size,
            actual_error: sol.actual_error,
            synopsis: sol.synopsis,
            metrics: DriverMetrics::new(),
        });
    }
    let splits = aligned_splits(data, s);
    let num_base = n / s;
    let p = *params;

    // ---- Bottom-up: base layer ----
    let base_job =
        JobBuilder::new("dhp-layer0")
            .map(
                move |split: &SliceSplit, ctx: &mut MapContext<u64, (u8, WireHpRow)>| {
                    match subtree_rows(split.slice(), &p) {
                        Ok(rows) => ctx.emit(
                            num_base as u64 + split.id as u64,
                            (0, WireHpRow(rows[1].clone())),
                        ),
                        Err(_) => ctx.emit(
                            u64::MAX,
                            (
                                1,
                                WireHpRow(HpRow {
                                    lo: 0,
                                    costs: vec![],
                                    shift_l: vec![],
                                    shift_r: vec![],
                                }),
                            ),
                        ),
                    }
                },
            )
            .input_bytes(SliceSplit::bytes)
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, (u8, WireHpRow)>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
    let mut pipe = Pipeline::on(cluster).stage(&base_job, &splits)?.try_then(
        |(_, pairs)| -> Result<Vec<(u64, HpRow)>, CoreError> {
            let mut layer: Vec<(u64, HpRow)> = Vec::new();
            for (k, (fail, WireHpRow(row))) in pairs {
                if fail == 1 {
                    return Err(HaarPlusError::DeltaTooCoarse.into());
                }
                layer.push((k, row));
            }
            layer.sort_unstable_by_key(|&(k, _)| k);
            Ok(layer)
        },
    )?;

    // ---- Bottom-up: upper layers (remember groups for the replay) ----
    let mut group_stack: Vec<Vec<RowGroup>> = Vec::new();
    while pipe.value().len() > 1 {
        let layer = pipe.value();
        let f = fan_in.min(layer.len());
        let groups: Vec<RowGroup> = layer
            .chunks(f)
            .map(|chunk| RowGroup {
                first: chunk[0].0,
                rows: chunk.iter().map(|(_, r)| r.clone()).collect(),
            })
            .collect();
        let up_job = JobBuilder::new("dhp-layer-up")
            .map(
                move |group: &RowGroup, ctx: &mut MapContext<u64, WireHpRow>| {
                    let rows = mini_tree_rows(&group.rows);
                    ctx.emit(
                        group.first / group.rows.len() as u64,
                        WireHpRow(rows[1].clone()),
                    );
                },
            )
            .input_bytes(|g: &RowGroup| {
                g.rows.iter().map(|r| (8 + r.costs.len() * 12) as u64).sum()
            })
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, WireHpRow>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
        pipe = pipe.stage(&up_job, &groups)?.then(|(_, pairs)| {
            let mut layer: Vec<(u64, HpRow)> =
                pairs.into_iter().map(|(k, WireHpRow(r))| (k, r)).collect();
            layer.sort_unstable_by_key(|&(k, _)| k);
            layer
        });
        group_stack.push(groups);
    }

    // ---- Top node resolution ----
    let root = &pipe.value()[0].1;
    let mut best = (u32::MAX, 0i64);
    for (t, &c) in root.costs.iter().enumerate() {
        let v = root.lo + t as i64;
        if c == u32::MAX {
            continue;
        }
        let total = c + u32::from(v != 0);
        if total < best.0 || (total == best.0 && v == 0) {
            best = (total, v);
        }
    }
    if best.0 == u32::MAX {
        return Err(HaarPlusError::DeltaTooCoarse.into());
    }
    let mut entries: Vec<(u32, Role, f64)> = Vec::new();
    if best.1 != 0 {
        entries.push((0, Role::Top, best.1 as f64 * params.delta));
    }

    // ---- Top-down replay through the upper layers ----
    let mut pipe = pipe.then(|_| ());
    let mut incoming: HashMap<u64, i64> = HashMap::new();
    incoming.insert(1, best.1);
    for groups in group_stack.into_iter().rev() {
        let tagged: Vec<(RowGroup, i64)> = groups
            .into_iter()
            .map(|g| {
                let parent = g.first / g.rows.len() as u64;
                (g, *incoming.get(&parent).expect("incoming for every group"))
            })
            .collect();
        let extract_job = JobBuilder::new("dhp-extract")
            .map(
                move |(group, v_root): &(RowGroup, i64),
                      ctx: &mut MapContext<u64, (i64, i64, u8)>| {
                    let f = group.rows.len();
                    let rows = mini_tree_rows(&group.rows);
                    let mut stack = vec![(1usize, *v_root)];
                    while let Some((i, v)) = stack.pop() {
                        let off = (v - rows[i].lo) as usize;
                        let a = i64::from(rows[i].shift_l[off]);
                        let b = i64::from(rows[i].shift_r[off]);
                        let depth = usize::BITS - 1 - i.leading_zeros();
                        let g_id =
                            ((group.first / f as u64) << depth) + (i as u64 - (1u64 << depth));
                        if a != 0 || b != 0 {
                            ctx.emit(g_id, (a, b, 1));
                        }
                        if 2 * i < f {
                            stack.push((2 * i, v + a));
                            stack.push((2 * i + 1, v + b));
                        } else {
                            let base = (i - f / 2) * 2;
                            let child = group.first + base as u64;
                            ctx.emit(child, (v + a, 0, 0));
                            ctx.emit(child + 1, (v + b, 0, 0));
                        }
                    }
                },
            )
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, (i64, i64, u8)>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            });
        pipe = pipe.stage(&extract_job, &tagged)?.then(|(_, pairs)| {
            for (node, (x, y, tag)) in pairs {
                if tag == 1 {
                    triad_entries(node as u32, x, y, params.delta, &mut entries);
                } else {
                    incoming.insert(node, x);
                }
            }
        });
    }

    // ---- Base-layer replay ----
    let base_incoming: Vec<i64> = (0..num_base)
        .map(|j| {
            if num_base == 1 {
                best.1
            } else {
                *incoming
                    .get(&(num_base as u64 + j as u64))
                    .expect("incoming for every base root")
            }
        })
        .collect();
    let bi = Arc::new(base_incoming);
    let bi2 = Arc::clone(&bi);
    let base_extract_job = JobBuilder::new("dhp-extract-base")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u64, (i64, i64)>| {
                let rows = subtree_rows(split.slice(), &p).expect("phase A ran");
                let m = split.len();
                let mut stack = vec![(1usize, bi2[split.id as usize])];
                while let Some((i, v)) = stack.pop() {
                    let off = (v - rows[i].lo) as usize;
                    let a = i64::from(rows[i].shift_l[off]);
                    let b = i64::from(rows[i].shift_r[off]);
                    if a != 0 || b != 0 {
                        let depth = usize::BITS - 1 - i.leading_zeros();
                        let root = num_base as u64 + split.id as u64;
                        let g = (root << depth) + (i as u64 - (1u64 << depth));
                        ctx.emit(g, (a, b));
                    }
                    if 2 * i < m {
                        stack.push((2 * i, v + a));
                        stack.push((2 * i + 1, v + b));
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, (i64, i64)>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let ((), metrics) = pipe
        .stage(&base_extract_job, &splits)?
        .then(|(_, pairs)| {
            for (node, (a, b)) in pairs {
                triad_entries(node as u32, a, b, params.delta, &mut entries);
            }
        })
        .finish();

    entries.sort_by_key(|&(i, _, _)| i);
    debug_assert_eq!(entries.len(), best.0 as usize);
    let synopsis = HaarPlusSynopsis::from_entries_unchecked(n, entries);
    let approx = synopsis.reconstruct_all();
    let actual_error = dwmaxerr_wavelet::metrics::max_abs(data, &approx);
    Ok(DhpResult {
        size: synopsis.size(),
        synopsis,
        actual_error,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::haar_plus::haar_plus_min_space;
    use dwmaxerr_runtime::ClusterConfig;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    #[test]
    fn matches_centralized_haar_plus() {
        let data: Vec<f64> = (0..64)
            .map(|i| ((i * 19) % 31) as f64 + if i % 16 < 8 { 40.0 } else { 0.0 })
            .collect();
        for eps in [2.0, 6.0, 20.0] {
            let params = MhsParams::new(eps, 0.5).unwrap();
            let central = haar_plus_min_space(&data, &params).unwrap();
            let cfg = DhpConfig {
                base_leaves: 8,
                fan_in: 2,
            };
            let dist = dhaar_plus(&test_cluster(), &data, &params, &cfg).unwrap();
            assert_eq!(dist.size, central.size, "eps={eps}");
            assert!(dist.actual_error <= eps + 1e-9);
        }
    }

    #[test]
    fn partitioning_invariance() {
        let data: Vec<f64> = (0..128).map(|i| ((i * 11) % 43) as f64).collect();
        let params = MhsParams::new(5.0, 0.5).unwrap();
        let sizes: Vec<usize> = [(4usize, 2usize), (8, 4), (32, 2)]
            .iter()
            .map(|&(s, f)| {
                dhaar_plus(
                    &test_cluster(),
                    &data,
                    &params,
                    &DhpConfig {
                        base_leaves: s,
                        fan_in: f,
                    },
                )
                .unwrap()
                .size
            })
            .collect();
        for w in sizes.windows(2) {
            assert_eq!(w[0], w[1], "partitioning changed the result: {sizes:?}");
        }
    }

    #[test]
    fn never_worse_than_distributed_unrestricted_haar() {
        let data: Vec<f64> = (0..64)
            .map(|i| if i % 8 < 4 { 100.0 } else { (i % 5) as f64 })
            .collect();
        let params = MhsParams::new(3.0, 0.5).unwrap();
        let cfg = DhpConfig {
            base_leaves: 8,
            fan_in: 2,
        };
        let hp = dhaar_plus(&test_cluster(), &data, &params, &cfg).unwrap();
        let mhs = crate::dmin_haar_space::dmin_haar_space(
            &test_cluster(),
            &data,
            &params,
            &crate::dmin_haar_space::DmhsConfig {
                base_leaves: 8,
                fan_in: 2,
            },
        )
        .unwrap();
        assert!(hp.size <= mhs.size, "Haar+ {} > Haar {}", hp.size, mhs.size);
    }
}
