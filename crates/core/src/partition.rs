//! Locality-preserving error-tree partitioning (Section 4, Figures 3-4).
//!
//! The framework splits the error tree of an `N`-value array into one
//! **root sub-tree** (the top `R` coefficient nodes `c_0 .. c_{R-1}`) and
//! `R` **base sub-trees**, each rooted at a node `c_{R+j}` and covering `S`
//! consecutive data values, with `N = R + R·S` coefficients in total
//! (Section 5.3's accounting; here `S` counts the base sub-tree's *leaves*
//! and each base sub-tree holds `S - 1` detail coefficients, so
//! `R + R·(S-1) + ... = N` holds as `R · S = N`).
//!
//! Two self-similarity facts make the partitioning work:
//!
//! 1. the root sub-tree `c_0..c_{R-1}` is *exactly* the error tree of the
//!    `R`-value array of base-slice averages, and
//! 2. each base sub-tree is exactly the detail tree of its own `S`-value
//!    slice, computable locally by any worker holding that slice.
//!
//! The same indices also describe the height-`h` layer decomposition used
//! to parallelize the DP algorithms (Eq. 4): a layer's sub-trees are just
//! base partitions of the row array above them.

use dwmaxerr_wavelet::tree::TreeTopology;
use dwmaxerr_wavelet::WaveletError;

/// The root/base split of an `n`-leaf error tree with base sub-trees of
/// `s` leaves each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasePartition {
    n: usize,
    s: usize,
    r: usize,
}

impl BasePartition {
    /// Creates a partition of an `n`-value tree into base sub-trees of `s`
    /// leaves. Both must be powers of two with `2 <= s <= n`.
    pub fn new(n: usize, s: usize) -> Result<Self, WaveletError> {
        dwmaxerr_wavelet::error::ensure_pow2(n)?;
        dwmaxerr_wavelet::error::ensure_pow2(s)?;
        if s < 2 || s > n {
            return Err(WaveletError::NonPositiveParameter(
                "base sub-tree leaf count must satisfy 2 <= s <= n",
            ));
        }
        Ok(BasePartition { n, s, r: n / s })
    }

    /// Total data values `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Leaves per base sub-tree (`S`).
    #[inline]
    pub fn base_leaves(&self) -> usize {
        self.s
    }

    /// Number of base sub-trees — also the size of the root sub-tree (`R`).
    #[inline]
    pub fn num_base(&self) -> usize {
        self.r
    }

    /// Detail coefficients per base sub-tree (`S - 1`).
    #[inline]
    pub fn base_details(&self) -> usize {
        self.s - 1
    }

    /// The global error-tree node id of base sub-tree `j`'s root.
    #[inline]
    pub fn base_root(&self, j: usize) -> usize {
        debug_assert!(j < self.r);
        self.r + j
    }

    /// The data range covered by base sub-tree `j`.
    #[inline]
    pub fn base_span(&self, j: usize) -> std::ops::Range<usize> {
        debug_assert!(j < self.r);
        j * self.s..(j + 1) * self.s
    }

    /// Maps a *local* detail-node id (heap order within base sub-tree `j`,
    /// local root = 1) to the global error-tree node id.
    #[inline]
    pub fn local_to_global(&self, j: usize, local: usize) -> usize {
        debug_assert!(local >= 1 && local < self.s);
        let depth = usize::BITS - 1 - local.leading_zeros();
        (self.base_root(j) << depth) + (local - (1usize << depth))
    }

    /// Maps a global node id inside base sub-tree `j` back to its local id.
    #[inline]
    pub fn global_to_local(&self, j: usize, global: usize) -> usize {
        let root = self.base_root(j);
        let depth =
            (usize::BITS - 1 - global.leading_zeros()) - (usize::BITS - 1 - root.leading_zeros());
        let level_start_global = root << depth;
        (1usize << depth) + (global - level_start_global)
    }

    /// Which base sub-tree a global node id `>= r` belongs to.
    #[inline]
    pub fn owner_of(&self, global: usize) -> usize {
        debug_assert!(global >= self.r && global < self.n);
        let depth =
            (usize::BITS - 1 - global.leading_zeros()) - (usize::BITS - 1 - self.r.leading_zeros());
        (global >> depth) - self.r
    }

    /// Extracts base sub-tree `j`'s detail coefficients in local heap order
    /// from the full coefficient array.
    pub fn base_details_from(&self, coeffs: &[f64], j: usize) -> Vec<f64> {
        debug_assert_eq!(coeffs.len(), self.n);
        (1..self.s)
            .map(|local| coeffs[self.local_to_global(j, local)])
            .collect()
    }

    /// Computes base sub-tree `j`'s detail coefficients directly from its
    /// data slice (what a worker owning the slice does locally). Also
    /// returns the slice average — the leaf value of the root sub-tree.
    pub fn base_details_from_data(&self, slice: &[f64]) -> (Vec<f64>, f64) {
        debug_assert_eq!(slice.len(), self.s);
        let w = dwmaxerr_wavelet::transform::forward(slice).expect("power-of-two slice");
        (w[1..].to_vec(), w[0])
    }

    /// The root sub-tree's coefficients `c_0..c_{R-1}`, computed from the
    /// base slice averages (self-similarity of the Haar transform).
    pub fn root_coeffs_from_averages(&self, averages: &[f64]) -> Vec<f64> {
        debug_assert_eq!(averages.len(), self.r);
        dwmaxerr_wavelet::transform::forward(averages).expect("power-of-two averages")
    }

    /// The topology of the root sub-tree viewed as an `R`-leaf error tree
    /// whose leaves are the base sub-trees.
    pub fn root_topology(&self) -> TreeTopology {
        TreeTopology::new(self.r).expect("power-of-two r")
    }

    /// The signed incoming **error** `delta_j * e_in` to base sub-tree `j`
    /// when the root-sub-tree nodes in `removed` are discarded (their
    /// values taken from `root_coeffs`): `-Σ sign(a, j) · c_a`
    /// (Section 5.2's worked example: removing `{c_0, c_2}` of Figure 1
    /// sends incoming error `-7 - 4 = -11` to a right-subtree `T_j`).
    pub fn incoming_error(&self, root_coeffs: &[f64], removed: &[usize], j: usize) -> f64 {
        let topo = self.root_topology();
        -removed
            .iter()
            .map(|&a| f64::from(topo.sign(a, j)) * root_coeffs[a])
            .sum::<f64>()
    }

    /// The incoming **value** to base sub-tree `j` when exactly the
    /// root-sub-tree nodes in `retained` are kept.
    pub fn incoming_value(&self, root_coeffs: &[f64], retained: &[usize], j: usize) -> f64 {
        let topo = self.root_topology();
        retained
            .iter()
            .map(|&a| f64::from(topo.sign(a, j)) * root_coeffs[a])
            .sum::<f64>()
    }
}

/// The layer decomposition of Section 4 (Eq. 4): bottom-up layers of
/// height-`h` sub-trees for the DP framework. Layer 0 is the base layer of
/// data slices; each subsequent layer combines `2^h` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPlan {
    n: usize,
    base_leaves: usize,
    fan_in: usize,
}

impl LayerPlan {
    /// Plans layers over an `n`-value tree: base sub-trees of
    /// `base_leaves` data values, upper layers combining `fan_in` rows per
    /// worker. All powers of two.
    pub fn new(n: usize, base_leaves: usize, fan_in: usize) -> Result<Self, WaveletError> {
        dwmaxerr_wavelet::error::ensure_pow2(n)?;
        dwmaxerr_wavelet::error::ensure_pow2(base_leaves)?;
        dwmaxerr_wavelet::error::ensure_pow2(fan_in)?;
        if base_leaves < 2 || base_leaves > n || fan_in < 2 {
            return Err(WaveletError::NonPositiveParameter(
                "need 2 <= base_leaves <= n and fan_in >= 2",
            ));
        }
        Ok(LayerPlan {
            n,
            base_leaves,
            fan_in,
        })
    }

    /// Number of base sub-trees (rows produced by layer 0).
    pub fn base_count(&self) -> usize {
        self.n / self.base_leaves
    }

    /// Rows entering each upper layer: layer 1 gets `base_count()` rows,
    /// layer `i+1` gets `ceil(rows_i / fan_in)`... exactly
    /// `rows_i / fan_in` here since everything is a power of two (clamped
    /// to ≥ 1 group). Returns the row counts entering layers `1, 2, ...`
    /// until a single row remains.
    pub fn upper_layer_row_counts(&self) -> Vec<usize> {
        let mut counts = Vec::new();
        let mut rows = self.base_count();
        while rows > 1 {
            counts.push(rows);
            rows = (rows / self.fan_in).max(1);
        }
        counts
    }

    /// Total number of MapReduce stages (layers), including the base
    /// layer — `ceil(log N / h)`-shaped, per Eq. 4.
    pub fn stages(&self) -> usize {
        1 + self.upper_layer_row_counts().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_wavelet::transform::forward;

    #[test]
    fn accounting_matches_paper() {
        // N = R + R·S with S counting *detail coefficients* per base
        // sub-tree (paper's Section 5.3 notation): with s leaves per base
        // sub-tree, S = s - 1 and R·s = n.
        let p = BasePartition::new(64, 8).unwrap();
        assert_eq!(p.num_base(), 8);
        let r = p.num_base();
        let s_details = p.base_details();
        assert_eq!(r + r * s_details + (r - r), 64); // r·s = n
        assert_eq!(r * p.base_leaves(), p.n());
        assert_eq!(r + r * s_details, p.n()); // R + R·S = N
    }

    #[test]
    fn local_global_roundtrip() {
        let p = BasePartition::new(64, 8).unwrap();
        for j in 0..p.num_base() {
            for local in 1..8 {
                let g = p.local_to_global(j, local);
                assert!(g >= p.num_base() && g < 64);
                assert_eq!(p.global_to_local(j, g), local);
                assert_eq!(p.owner_of(g), j);
            }
        }
    }

    #[test]
    fn base_root_ids() {
        let p = BasePartition::new(16, 4).unwrap();
        assert_eq!(p.num_base(), 4);
        assert_eq!(p.base_root(0), 4);
        assert_eq!(p.base_root(3), 7);
        assert_eq!(p.base_span(2), 8..12);
    }

    #[test]
    fn details_from_data_match_full_transform() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64 * 1.7).sin() * 10.0).collect();
        let w = forward(&data).unwrap();
        let p = BasePartition::new(32, 8).unwrap();
        for j in 0..p.num_base() {
            let (from_data, avg) = p.base_details_from_data(&data[p.base_span(j)]);
            let from_full = p.base_details_from(&w, j);
            for (a, b) in from_data.iter().zip(&from_full) {
                assert!((a - b).abs() < 1e-9);
            }
            let direct_avg: f64 = data[p.base_span(j)].iter().sum::<f64>() / p.base_leaves() as f64;
            assert!((avg - direct_avg).abs() < 1e-9);
        }
    }

    #[test]
    fn root_coeffs_from_averages_match_full_transform() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 37) % 19) as f64).collect();
        let w = forward(&data).unwrap();
        let p = BasePartition::new(64, 8).unwrap();
        let averages: Vec<f64> = (0..p.num_base())
            .map(|j| data[p.base_span(j)].iter().sum::<f64>() / p.base_leaves() as f64)
            .collect();
        let root = p.root_coeffs_from_averages(&averages);
        for (i, c) in root.iter().enumerate() {
            assert!((c - w[i]).abs() < 1e-9, "root coeff {i}");
        }
    }

    #[test]
    fn paper_incoming_error_example() {
        // Figure 1 tree, root sub-tree {c_0, c_1, c_2, c_3}, base leaves
        // of size 2 (4 base sub-trees). Removing {c_0, c_2}: a sub-tree in
        // the *right* half of c_2 (base index 1) gets -7 - 4 = -11.
        let data = [5.0, 5.0, 0.0, 26.0, 1.0, 3.0, 14.0, 2.0];
        let w = forward(&data).unwrap();
        let p = BasePartition::new(8, 2).unwrap();
        let e = p.incoming_error(&w[..4], &[0, 2], 1);
        assert!((e - (-11.0)).abs() < 1e-12, "got {e}");
        // A sub-tree in the left half of c_2 (base index 0): -7 + (-4)·1
        // reversed sign: -(c_0 + c_2) = -(7 - 4) = -3.
        let e0 = p.incoming_error(&w[..4], &[0, 2], 0);
        assert!((e0 - (-3.0)).abs() < 1e-12, "got {e0}");
    }

    #[test]
    fn incoming_value_plus_error_is_consistent() {
        // incoming_value(retained) - incoming_value(all) = incoming_error(removed).
        let data: Vec<f64> = (0..16).map(|i| (i as f64).powi(2) % 11.0).collect();
        let w = forward(&data).unwrap();
        let p = BasePartition::new(16, 4).unwrap();
        let root = &w[..4];
        let all: Vec<usize> = (0..4).collect();
        for j in 0..p.num_base() {
            let full = p.incoming_value(root, &all, j);
            let retained = vec![0usize, 3];
            let removed = vec![1usize, 2];
            let got = p.incoming_value(root, &retained, j);
            let err = p.incoming_error(root, &removed, j);
            assert!((got - (full + err)).abs() < 1e-9);
        }
    }

    #[test]
    fn incoming_value_reconstructs_subtree_entry() {
        // With ALL root nodes retained, the incoming value to base j must
        // equal the incoming value of the base root node in the full tree.
        let data: Vec<f64> = (0..32).map(|i| ((i * 13) % 23) as f64).collect();
        let tree = dwmaxerr_wavelet::ErrorTree::from_data(&data).unwrap();
        let p = BasePartition::new(32, 4).unwrap();
        let all: Vec<usize> = (0..p.num_base()).collect();
        for j in 0..p.num_base() {
            let via_partition = p.incoming_value(&tree.coefficients()[..p.num_base()], &all, j);
            let via_tree = tree.incoming_value(p.base_root(j));
            assert!((via_partition - via_tree).abs() < 1e-9, "base {j}");
        }
    }

    #[test]
    fn layer_plan_counts() {
        let plan = LayerPlan::new(1 << 12, 1 << 4, 1 << 2).unwrap();
        assert_eq!(plan.base_count(), 256);
        assert_eq!(plan.upper_layer_row_counts(), vec![256, 64, 16, 4]);
        assert_eq!(plan.stages(), 5);
    }

    #[test]
    fn layer_plan_degenerate_single_base() {
        let plan = LayerPlan::new(8, 8, 2).unwrap();
        assert_eq!(plan.base_count(), 1);
        assert!(plan.upper_layer_row_counts().is_empty());
        assert_eq!(plan.stages(), 1);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BasePartition::new(10, 2).is_err());
        assert!(BasePartition::new(16, 3).is_err());
        assert!(BasePartition::new(16, 32).is_err());
        assert!(BasePartition::new(16, 1).is_err());
        assert!(LayerPlan::new(16, 4, 1).is_err());
    }
}
