//! DGreedyAbs (Section 5, Algorithms 3-6): the paper's distributed greedy
//! algorithm for maximum-absolute-error thresholding.
//!
//! Pipeline (Algorithm 6):
//!
//! 1. **Averages job** — base-slice averages roll up into the root
//!    sub-tree's coefficients (Haar self-similarity).
//! 2. **genRootSets** (Algorithm 4, driver-side) — GreedyAbs on the root
//!    sub-tree yields `min{R,B}+1` nested candidate retained sets
//!    `C_root`; the root-run error after removing `R-k` nodes is exactly
//!    `max_j |e_in,j|` for candidate `k` (the root tree's pseudo-leaves
//!    *are* the base sub-tree entry points), which the driver keeps as the
//!    residual floor `ρ_k`.
//! 3. **ErrHistGreedyAbs job** (Algorithm 3 + histogram optimization) —
//!    each level-1 worker runs GreedyAbs over its base sub-tree once per
//!    *distinct* incoming error (`log R + 2` runs, Section 5.3), batches
//!    removals into error buckets of width `e_b`, and emits per-candidate
//!    histograms `(C_root id) -> (bucket, count)` instead of node lists —
//!    the paper's I/O optimization.
//! 4. **combineResults** (Algorithm 5, level-2 reducers) — per candidate,
//!    merge histograms in descending error order and read off the error at
//!    the `B - |C_root|` cut; the driver picks the best candidate as
//!    `max(cut error, ρ_k)` minimized over `k`.
//! 5. **Synopsis job** — level-1 workers rerun GreedyAbs only for the
//!    winning `C_root`, emitting actual `(node, coefficient)` pairs
//!    filtered to removal errors around the winning cut; a single reducer
//!    keeps the top `B - |C_root|`.

use std::collections::HashMap;
use std::sync::Arc;

use dwmaxerr_algos::greedy_abs::GreedyAbs;
use dwmaxerr_runtime::metrics::DriverMetrics;
use dwmaxerr_runtime::{Cluster, JobBuilder, MapContext, Pipeline, ReduceContext};
use dwmaxerr_wavelet::Synopsis;

use crate::error::CoreError;
use crate::partition::BasePartition;
use crate::splits::{aligned_splits, SliceSplit};

/// Tuning knobs for DGreedyAbs.
#[derive(Debug, Clone)]
pub struct DGreedyAbsConfig {
    /// Leaves per base sub-tree (`S`); power of two. The paper uses 1M-node
    /// sub-trees and shows the choice barely matters (Figure 5a).
    pub base_leaves: usize,
    /// Error-bucket width `e_b` (Algorithm 3). Smaller buckets mean more
    /// emitted key-values but a tighter final cut.
    pub bucket_width: f64,
    /// Level-2 workers (paper: 4 reducers).
    pub reducers: usize,
    /// Optional cap on the number of speculative `C_root` candidates
    /// (ablation knob; the paper always explores all `min{R,B}+1`).
    /// Candidates of size `0..=cap` are kept.
    pub max_candidates: Option<usize>,
}

impl Default for DGreedyAbsConfig {
    fn default() -> Self {
        DGreedyAbsConfig {
            base_leaves: 1 << 12,
            bucket_width: 1e-6,
            reducers: 4,
            max_candidates: None,
        }
    }
}

/// Result of a DGreedyAbs run.
#[derive(Debug, Clone)]
pub struct DGreedyAbsResult {
    /// The synopsis (root retained set ∪ chosen base nodes).
    pub synopsis: Synopsis,
    /// The driver's error estimate (exact up to bucket width).
    pub estimated_error: f64,
    /// `|C_root|` of the winning candidate.
    pub best_croot_size: usize,
    /// Per-job metrics of the whole pipeline.
    pub metrics: DriverMetrics,
}

/// Shared driver-side context broadcast to level-1 workers.
struct Broadcast {
    partition: BasePartition,
    root_coeffs: Vec<f64>,
    /// Root-sub-tree removal order (genRootSets' `L_root`).
    removal_order: Vec<usize>,
    /// Candidate count: sets `k = 0..=max_k`.
    max_k: usize,
    bucket_width: f64,
}

impl Broadcast {
    /// Root nodes *removed* under candidate `k` (all but the last `k`
    /// removals).
    fn removed_under(&self, k: usize) -> &[usize] {
        &self.removal_order[..self.removal_order.len() - k]
    }

    /// Root nodes *retained* under candidate `k`.
    fn retained_under(&self, k: usize) -> &[usize] {
        &self.removal_order[self.removal_order.len() - k..]
    }

    fn bucket(&self, error: f64) -> i64 {
        bucket_of(error, self.bucket_width)
    }
}

/// The error bucket of `error` at bucket width `width` (Algorithm 3).
/// Shared with the incremental driver so cached and fresh runs bucket
/// identically.
pub(crate) fn bucket_of(error: f64, width: f64) -> i64 {
    (error / width).floor() as i64
}

/// Batches a removal trace into `(running-max bucket, count)` histogram
/// entries (Algorithm 3's `discardNode`, histogram form).
pub(crate) fn histogram_batches(
    trace: &[dwmaxerr_algos::Removal],
    bucket_width: f64,
) -> Vec<(i64, u32)> {
    let mut out = Vec::new();
    let mut max_bucket = i64::MIN;
    let mut count = 0u32;
    for r in trace {
        let b = bucket_of(r.error_after, bucket_width);
        if b <= max_bucket {
            count += 1;
        } else {
            if count > 0 {
                out.push((max_bucket, count));
            }
            max_bucket = b;
            count = 1;
        }
    }
    if count > 0 {
        out.push((max_bucket, count));
    }
    out
}

/// Runs DGreedyAbs over `data` with budget `b` on the given cluster.
pub fn dgreedy_abs(
    cluster: &Cluster,
    data: &[f64],
    b: usize,
    cfg: &DGreedyAbsConfig,
) -> Result<DGreedyAbsResult, CoreError> {
    let n = data.len();
    let partition = BasePartition::new(n, cfg.base_leaves.min(n))?;
    if cfg.bucket_width.is_nan() || cfg.bucket_width <= 0.0 {
        return Err(CoreError::Protocol("bucket_width must be positive"));
    }
    let splits = aligned_splits(data, partition.base_leaves());

    // ---- Job 0: base-slice averages -> root sub-tree coefficients ----
    let avg_job = JobBuilder::new("dgreedyabs-averages")
        .map(|split: &SliceSplit, ctx: &mut MapContext<u32, f64>| {
            let avg = split.slice().iter().sum::<f64>() / split.len() as f64;
            ctx.emit(split.id, avg);
        })
        .input_bytes(SliceSplit::bytes)
        .reduce(|k, vals, ctx: &mut ReduceContext<u32, f64>| {
            for v in vals {
                ctx.emit(*k, v);
            }
        });
    let pipe = Pipeline::on(cluster)
        .stage(&avg_job, &splits)?
        .then(|(_, pairs)| {
            let mut averages = vec![0.0; partition.num_base()];
            for (j, avg) in pairs {
                averages[j as usize] = avg;
            }
            partition.root_coeffs_from_averages(&averages)
        });
    let root_coeffs = pipe.value().clone();

    // ---- genRootSets (Algorithm 4): centralized GreedyAbs on the root ----
    let r = partition.num_base();
    let mut root_greedy = GreedyAbs::new_full(&root_coeffs)?;
    let root_trace = root_greedy.run_to_empty();
    let removal_order: Vec<usize> = root_trace.iter().map(|t| t.node as usize).collect();
    let max_k = r.min(b).min(cfg.max_candidates.unwrap_or(usize::MAX));
    // Residual floor per candidate: the root-run error after removing
    // R - k nodes equals max_j |e_in,j|.
    let rho: Vec<f64> = (0..=max_k)
        .map(|k| {
            let removed = r - k;
            if removed == 0 {
                0.0
            } else {
                root_trace[removed - 1].error_after
            }
        })
        .collect();

    let bc = Arc::new(Broadcast {
        partition,
        root_coeffs: root_coeffs.clone(),
        removal_order,
        max_k,
        bucket_width: cfg.bucket_width,
    });

    // ---- Job 1: ErrHistGreedyAbs (level 1) + combineResults (level 2) ----
    let bc1 = Arc::clone(&bc);
    let hist_job = JobBuilder::new("dgreedyabs-errhist")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u32, (i64, u32)>| {
                let bc = &bc1;
                let (details, _avg) = bc.partition.base_details_from_data(split.slice());
                let j = split.id as usize;
                // Group candidate sets by their (few) distinct incoming errors.
                let mut by_err: HashMap<u64, (f64, Vec<u32>)> = HashMap::new();
                for k in 0..=bc.max_k {
                    let e = bc
                        .partition
                        .incoming_error(&bc.root_coeffs, bc.removed_under(k), j);
                    by_err
                        .entry(e.to_bits())
                        .or_insert_with(|| (e, Vec::new()))
                        .1
                        .push(k as u32);
                }
                ctx.add_counter("distinct_incoming_errors", by_err.len() as u64);
                for (_, (e, ks)) in by_err {
                    let mut g = GreedyAbs::new_subtree(&details, e).expect("valid subtree");
                    let trace = g.run_to_empty();
                    let batches = histogram_batches(&trace, bc.bucket_width);
                    ctx.add_counter("greedy_runs", 1);
                    for &k in &ks {
                        for &(bucket, count) in &batches {
                            ctx.emit(k, (bucket, count));
                        }
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .task_memory(|s: &SliceSplit| dwmaxerr_algos::memory::greedy_abs_bytes(s.len()))
        .reducers(cfg.reducers)
        .partition_by(|k: &u32, parts| *k as usize % parts)
        .reduce(move |k: &u32, vals, ctx: &mut ReduceContext<u32, f64>| {
            // combineResults (Algorithm 5): merge histograms in
            // descending error order; the achieved error is the bucket
            // of the first node excluded from the B - |C_root| keep set.
            let mut batches: Vec<(i64, u32)> = vals.collect();
            batches.sort_unstable_by_key(|&(bucket, _)| std::cmp::Reverse(bucket));
            let keep = (b - *k as usize) as u64;
            let mut cum = 0u64;
            let mut cut = 0.0f64;
            for (bucket, count) in batches {
                if cum + u64::from(count) > keep {
                    cut = bucket as f64;
                    break;
                }
                cum += u64::from(count);
            }
            ctx.emit(*k, cut);
        });
    let pipe = pipe
        .stage(&hist_job, &splits)?
        // ---- Pick the best candidate: max(cut_k, rho_k), minimized ----
        .try_then(|(_, pairs)| -> Result<_, CoreError> {
            let mut best_k = 0usize;
            let mut best_err = f64::INFINITY;
            let mut best_cut = 0.0f64;
            for (k, cut_bucket) in pairs {
                let cut = cut_bucket * cfg.bucket_width;
                let total = cut.max(rho[k as usize]);
                // Canonical tie-break on the smaller candidate, so the
                // winner is independent of the reduce output order (the
                // incremental driver re-derives it iterating k ascending).
                if total < best_err || (total == best_err && (k as usize) < best_k) {
                    best_err = total;
                    best_k = k as usize;
                    best_cut = cut;
                }
            }
            if !best_err.is_finite() {
                return Err(CoreError::Protocol("no candidate produced a cut"));
            }
            Ok((best_k, best_err, best_cut))
        })?;
    let (best_k, best_err, best_cut) = *pipe.value();

    // ---- Job 2: emit actual nodes for the winning C_root ----
    let bc2 = Arc::clone(&bc);
    let cut_bucket = bc.bucket(best_cut);
    let keep_base = b - best_k;
    let syn_job = JobBuilder::new("dgreedyabs-synopsis")
        .map(
            move |split: &SliceSplit, ctx: &mut MapContext<u8, (i64, u32, u32, f64)>| {
                let bc = &bc2;
                let (details, _avg) = bc.partition.base_details_from_data(split.slice());
                let j = split.id as usize;
                let e = bc
                    .partition
                    .incoming_error(&bc.root_coeffs, bc.removed_under(best_k), j);
                let mut g = GreedyAbs::new_subtree(&details, e).expect("valid subtree");
                let trace = g.run_to_empty();
                // Running-max bucket per removal; only nodes at or above
                // the winning cut (minus one bucket of slack) can be kept.
                let mut max_bucket = i64::MIN;
                for (idx, rem) in trace.iter().enumerate() {
                    max_bucket = max_bucket.max(bc.bucket(rem.error_after));
                    if max_bucket >= cut_bucket.saturating_sub(1) {
                        let global = bc.partition.local_to_global(j, rem.node as usize);
                        let coeff = details[rem.node as usize - 1];
                        ctx.emit(0, (max_bucket, idx as u32, global as u32, coeff));
                    }
                }
            },
        )
        .input_bytes(SliceSplit::bytes)
        .reduce(move |_k: &u8, vals, ctx: &mut ReduceContext<u32, f64>| {
            let mut nodes: Vec<(i64, u32, u32, f64)> = vals.collect();
            // Most important first: later batches, later removals.
            nodes.sort_unstable_by_key(|&(bucket, idx, _, _)| std::cmp::Reverse((bucket, idx)));
            for (_, _, node, coeff) in nodes.into_iter().take(keep_base) {
                ctx.emit(node, coeff);
            }
        });
    let ((_, syn_pairs), metrics) = pipe.stage(&syn_job, &splits)?.finish();

    // ---- Assemble the synopsis: winning C_root ∪ chosen base nodes ----
    let mut entries: Vec<(u32, f64)> = bc
        .retained_under(best_k)
        .iter()
        .map(|&a| (a as u32, root_coeffs[a]))
        .collect();
    entries.extend(syn_pairs);
    let synopsis = Synopsis::from_entries(n, entries)?;

    Ok(DGreedyAbsResult {
        synopsis,
        estimated_error: best_err,
        best_croot_size: best_k,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwmaxerr_algos::greedy_abs::greedy_abs_synopsis;
    use dwmaxerr_runtime::ClusterConfig;
    use dwmaxerr_wavelet::metrics::max_abs;
    use dwmaxerr_wavelet::transform::forward;

    fn test_cluster() -> Cluster {
        let mut cfg = ClusterConfig::with_slots(4, 2);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    }

    fn run(data: &[f64], b: usize, s: usize) -> DGreedyAbsResult {
        let cfg = DGreedyAbsConfig {
            base_leaves: s,
            bucket_width: 1e-9,
            reducers: 2,
            max_candidates: None,
        };
        dgreedy_abs(&test_cluster(), data, b, &cfg).unwrap()
    }

    #[test]
    fn matches_centralized_greedy_on_paper_data() {
        let data = [5.0, 5.0, 0.0, 26.0, 1.0, 3.0, 14.0, 2.0];
        let w = forward(&data).unwrap();
        for b in 1..=8 {
            let d = run(&data, b, 2);
            assert!(d.synopsis.size() <= b, "b={b}: size {}", d.synopsis.size());
            let d_err = max_abs(&data, &d.synopsis.reconstruct_all());
            let (_, g_err) = greedy_abs_synopsis(&w, b).unwrap();
            assert!(
                d_err <= g_err + 1e-6,
                "b={b}: distributed {d_err} vs centralized {g_err}"
            );
        }
    }

    #[test]
    fn estimated_error_matches_actual() {
        let data: Vec<f64> = (0..64)
            .map(|i| ((i * 37) % 23) as f64 + if i == 13 { 100.0 } else { 0.0 })
            .collect();
        for (b, s) in [(8, 8), (16, 16), (5, 4)] {
            let d = run(&data, b, s);
            let actual = max_abs(&data, &d.synopsis.reconstruct_all());
            assert!(
                (actual - d.estimated_error).abs() <= 1e-6 + d.estimated_error * 1e-9,
                "b={b} s={s}: actual {actual} vs estimated {}",
                d.estimated_error
            );
        }
    }

    #[test]
    fn different_subtree_sizes_same_quality() {
        // Figure 5a's point: the sub-tree size does not change the result.
        let data: Vec<f64> = (0..128).map(|i| ((i * 13) % 31) as f64 * 3.0).collect();
        let b = 16;
        let errs: Vec<f64> = [4usize, 8, 16, 32]
            .iter()
            .map(|&s| {
                let d = run(&data, b, s);
                max_abs(&data, &d.synopsis.reconstruct_all())
            })
            .collect();
        for w in errs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-6,
                "sub-tree size changed quality: {errs:?}"
            );
        }
    }

    #[test]
    fn full_budget_is_near_lossless() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64).sin() * 50.0).collect();
        let d = run(&data, 32, 8);
        let err = max_abs(&data, &d.synopsis.reconstruct_all());
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn zero_budget_keeps_nothing() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let d = run(&data, 0, 4);
        assert_eq!(d.synopsis.size(), 0);
        assert_eq!(d.best_croot_size, 0);
    }

    #[test]
    fn pipeline_runs_three_jobs() {
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let d = run(&data, 4, 8);
        assert_eq!(d.metrics.job_count(), 3);
        assert!(d.metrics.total_shuffle_bytes() > 0);
        assert!(d.metrics.total_simulated().secs() > 0.0);
    }

    #[test]
    fn histogram_batches_compact_monotone_runs() {
        let trace: Vec<dwmaxerr_algos::Removal> = [1.2, 1.7, 3.5, 3.0, 4.2]
            .iter()
            .enumerate()
            .map(|(i, &e)| dwmaxerr_algos::Removal {
                node: i as u32 + 1,
                error_after: e,
            })
            .collect();
        // Buckets: 1,1,3,3(<=max),4 -> batches (1,2),(3,2),(4,1).
        assert_eq!(histogram_batches(&trace, 1.0), vec![(1, 2), (3, 2), (4, 1)]);
    }
}
