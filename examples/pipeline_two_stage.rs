//! A minimal two-stage `runtime::pipeline` plan.
//!
//! Stage 1 computes per-chunk averages of a data vector; driver-side glue
//! picks a threshold from them; stage 2 re-scans the same chunks and counts
//! values above the threshold. The pipeline owns the split handoff and
//! folds both jobs' metrics into one `DriverMetrics`, reported per stage at
//! the end — the same machinery every distributed algorithm in
//! `crates/core` now runs on. The run's execution trace is written next
//! to the binary as `pipeline_two_stage.trace.jsonl` (structured event
//! log) and `pipeline_two_stage.trace.json` — drag the latter into
//! <https://ui.perfetto.dev> to see both stages on the simulated
//! timeline.
//!
//! Run with: `cargo run --release --example pipeline_two_stage`

use dwmaxerr::datagen::synthetic::uniform;
use dwmaxerr::runtime::{
    trace, Cluster, ClusterConfig, JobBuilder, MapContext, Pipeline, ReduceContext,
};

fn main() {
    let data = uniform(1 << 12, 100.0, 7);
    let chunks: Vec<Vec<f64>> = data.chunks(256).map(<[f64]>::to_vec).collect();
    let cluster = Cluster::new(ClusterConfig::with_slots(4, 2));

    // Stage 1: one average per chunk, reduced to the global average.
    let avg_job = JobBuilder::new("chunk-average")
        .map(|chunk: &Vec<f64>, ctx: &mut MapContext<u8, (f64, u64)>| {
            let sum: f64 = chunk.iter().sum();
            ctx.emit(0, (sum, chunk.len() as u64));
        })
        .reduce(|_k, vals, ctx: &mut ReduceContext<u8, f64>| {
            let (sum, count) = vals.fold((0.0, 0u64), |(s, c), (sum, count)| (s + sum, c + count));
            ctx.emit(0, sum / count as f64);
        });

    // Stage 2: count values above a driver-chosen threshold.
    let pipe = Pipeline::on(&cluster)
        .stage(&avg_job, &chunks)
        .expect("average job")
        .then(|(_, pairs)| {
            // Driver-side glue: the threshold is 1.5x the global average.
            pairs[0].1 * 1.5
        });
    let threshold = *pipe.value();

    let count_job = JobBuilder::new("count-above")
        .map(move |chunk: &Vec<f64>, ctx: &mut MapContext<u8, u64>| {
            let above = chunk.iter().filter(|&&v| v > threshold).count();
            ctx.emit(0, above as u64);
        })
        .reduce(|_k, vals, ctx: &mut ReduceContext<u8, u64>| {
            ctx.emit(0, vals.sum());
        });

    let (count, metrics) = pipe
        .stage(&count_job, &chunks)
        .expect("count job")
        .then(|(_, pairs)| pairs[0].1)
        .finish();

    println!(
        "{} of {} values exceed 1.5x the average ({threshold:.2})",
        count,
        data.len()
    );
    println!("\nper-stage breakdown:");
    for s in metrics.per_stage() {
        println!(
            "  {:<14} runs={} sim={} shuffle={}B",
            s.name, s.runs, s.simulated, s.shuffle_bytes
        );
    }
    println!(
        "  {:<14} jobs={} sim={} shuffle={}B",
        "total",
        metrics.job_count(),
        metrics.total_simulated(),
        metrics.total_shuffle_bytes()
    );

    // Export the execution trace: JSONL for tooling, Chrome trace-event
    // JSON for Perfetto / chrome://tracing.
    let events = cluster.trace_events();
    trace::validate(&events).expect("trace is well-formed");
    std::fs::write("pipeline_two_stage.trace.jsonl", trace::to_jsonl(&events))
        .expect("write jsonl trace");
    std::fs::write(
        "pipeline_two_stage.trace.json",
        trace::chrome_trace(&events),
    )
    .expect("write chrome trace");
    println!(
        "\ntrace: {} events -> pipeline_two_stage.trace.jsonl / .json \
         (open the .json at https://ui.perfetto.dev)",
        events.len()
    );
}
