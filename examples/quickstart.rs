//! Quickstart: the paper's running example (Table 1 / Figure 1).
//!
//! Builds the Haar decomposition of the 8-value example array, inspects
//! the error tree, thresholds it three ways, and compares errors.
//!
//! Run with: `cargo run --release --example quickstart`

use dwmaxerr::algos::indirect_haar::indirect_haar_centralized;
use dwmaxerr::algos::{conventional_synopsis, greedy_abs_synopsis};
use dwmaxerr::wavelet::transform::forward;
use dwmaxerr::wavelet::{metrics, ErrorTree, Synopsis};

fn main() {
    // The paper's example data vector (Section 2.1).
    let data = vec![5.0, 5.0, 0.0, 26.0, 1.0, 3.0, 14.0, 2.0];
    let coeffs = forward(&data).expect("power-of-two input");
    println!("data:          {data:?}");
    println!("wavelet (W_A): {coeffs:?}"); // [7, 2, -4, -3, 0, -13, -1, 6]

    // Error-tree reconstruction: d_5 = 7 - 2 - 3 - (-1) = 3.
    let tree = ErrorTree::from_data(&data).unwrap();
    println!("reconstruct d_5 via path: {}", tree.reconstruct_value(5));

    // Range sum d(3:6) = 44 from only the path coefficients.
    let sum = dwmaxerr::wavelet::reconstruct::range_sum(&coeffs, 3, 6);
    println!("range sum d(3:6): {sum}");

    // Threshold to B = 3 coefficients, three ways.
    let b = 3;
    let conv = conventional_synopsis(&coeffs, b).unwrap();
    let (greedy, greedy_err) = greedy_abs_synopsis(&coeffs, b).unwrap();
    let dp = indirect_haar_centralized(&data, b, 0.25).unwrap();

    let report = |name: &str, syn: &Synopsis| {
        let e = metrics::evaluate(&data, syn, 1.0);
        println!(
            "{name:<22} size={} max_abs={:<8.3} L2={:.3}",
            syn.size(),
            e.max_abs,
            e.l2
        );
    };
    println!("\nB = {b} synopses:");
    report("conventional (L2-opt)", &conv);
    report("GreedyAbs", &greedy);
    report("IndirectHaar (DP)", &dp.synopsis);
    println!("\nGreedyAbs tracked error: {greedy_err}");
    println!(
        "IndirectHaar error:      {} ({} probes)",
        dp.error, dp.probes
    );

    // The max-error algorithms bound every individual value; the
    // conventional synopsis does not.
    assert!(dp.error <= metrics::evaluate(&data, &conv, 1.0).max_abs + 1e-9);
}
