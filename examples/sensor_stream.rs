//! A live sensor feed built with phased refinement and served through
//! the sharded query layer.
//!
//! Wind-direction sensors (the paper's WD dataset) keep appending
//! readings; a dashboard wants bounded answers about the last `n`
//! readings *now*, not after the exact thresholding finishes. Each tick
//! of the loop below appends a batch of readings and runs one phased
//! plan on the simulated cluster:
//!
//! 1. a **foreground** phase incrementally rebuilds the cheap
//!    conventional (L2) synopsis — only the base sub-trees the batch
//!    touched re-run — and publishes it immediately;
//! 2. a **background** phase incrementally rebuilds the exact DGreedyAbs
//!    synopsis, which the [`ServeDriver`] re-shards along error-tree
//!    partitions and atomically swaps into the query store with its
//!    guaranteed error bound attached.
//!
//! The dashboard side never touches snapshot internals: it takes a
//! [`reader`](dwmaxerr::serve::SynopsisStore::reader) pinned to one
//! store version and asks point / range-sum queries through the public
//! query API — every answer arrives with the `err_abs` guarantee it can
//! show next to the number. A reader taken before a rebuild keeps
//! answering from its pinned version while new readers see the fresh
//! one.
//!
//! Run with: `cargo run --release --example sensor_stream`
//!
//! [`ServeDriver`]: dwmaxerr::serve::ServeDriver

use dwmaxerr::core::dgreedy_abs::DGreedyAbsConfig;
use dwmaxerr::datagen::wd_like;
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::serve::{Query, ServeDriver};

fn main() {
    let n = 1 << 12; // window: the last 4 096 readings
    let batch = n / 16; // 256 readings arrive per tick
    let budget = n / 16;
    let shards = 16; // error-tree partitions on the read path
    let cfg = DGreedyAbsConfig {
        base_leaves: 1 << 8,
        bucket_width: 1e-6,
        reducers: 2,
        max_candidates: None,
    };
    let cluster = Cluster::new(ClusterConfig::default());
    let mut driver =
        ServeDriver::new(n, budget, &cfg, shards, "sensor-dashboard").expect("window setup");
    let store = driver.store().clone(); // what a dashboard would hold

    // One long simulated feed, appended batch by batch. The first tick
    // fills the whole window (a full build); later ticks slide it.
    let feed = wd_like(4 * n, 2e-4, 7);
    let mut offset = 0usize;

    println!(
        "{:>4} {:>6} {:>6} {:>9} {:>12} {:>12} {:>7}",
        "tick", "dirty", "tasks", "stale(s)", "coarse err", "bound", "store v"
    );
    let mut first = true;
    let mut pinned = None; // a reader taken after tick 1, held across rebuilds
    while offset < feed.len() {
        let take = if first { n } else { batch };
        let chunk = &feed[offset..(offset + take).min(feed.len())];
        offset += chunk.len();
        first = false;

        let report = driver.tick(&cluster, chunk).expect("tick");
        println!(
            "{:>4} {:>6} {:>6} {:>9.3} {:>11.2}° {:>11.2}° {:>7}",
            report.store_version,
            report.build.dirty_bases,
            report.build.foreground_tasks + report.build.background_tasks,
            report.build.staleness_secs,
            report.build.coarse_error,
            report.bound.err_abs.expect("exact builds carry a bound"),
            report.store_version,
        );
        if pinned.is_none() {
            pinned = Some(store.reader().expect("tick published"));
        }
    }

    // The dashboard's query side: bounded answers from the latest store
    // version, via single queries and a shard-grouped batch.
    let reader = store.reader().expect("store is live");
    let window = driver.driver().window();
    let x = n / 3;
    let point = reader.point(x).expect("in range");
    println!(
        "\nd̂_{x} = {:.2}° ± {:.2}° (store v{}, true value {:.2}°)",
        point.value,
        point.err_abs.expect("served answers carry a bound"),
        point.version,
        window.data()[x],
    );

    let (l, h) = (n / 2, n / 2 + 255);
    let range = reader.range_sum(l, h).expect("in range");
    println!(
        "d̂({l}:{h}) = {:.1}° ± {:.1}° (bound scales with the {} summed points)",
        range.value,
        range.err_abs.expect("range answers carry a scaled bound"),
        h - l + 1,
    );

    let batch_queries = [
        Query::Point { x: 7 },
        Query::Point { x: n - 1 },
        Query::RangeSum { l: 0, h: 1023 },
        Query::Point { x: 7 }, // repeat: answered from the batch memo
    ];
    let answers = reader.execute(&batch_queries).expect("valid batch");
    println!(
        "batch of {}: all answered from pinned store v{}",
        answers.len(),
        answers[0].version,
    );

    // The reader pinned after tick 1 still answers from version 1 even
    // though the store has moved on — snapshot swaps never tear a reader.
    let old = pinned.expect("set after tick 1");
    assert_eq!(old.version(), 1);
    assert!(old.version() < reader.version());
    println!(
        "pinned reader still serves store v{} while fresh readers see v{}",
        old.version(),
        reader.version(),
    );
}
