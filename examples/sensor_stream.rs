//! A live sensor feed served with phased refinement.
//!
//! Wind-direction sensors (the paper's WD dataset) keep appending
//! readings; a dashboard wants a synopsis of the last `n` readings *now*,
//! not after the exact thresholding finishes. Each tick of the loop below
//! appends a batch of readings into a [`StreamWindow`] and runs one
//! phased plan on the simulated cluster:
//!
//! 1. a **foreground** phase incrementally rebuilds the cheap
//!    conventional (L2) synopsis — only the base sub-trees the batch
//!    touched re-run — and publishes it immediately;
//! 2. a **background** phase incrementally rebuilds the exact DGreedyAbs
//!    synopsis and atomically swaps it into the same serving handle.
//!
//! The printed staleness column is the (simulated) time a consumer spends
//! reading the coarse answer before the exact one supersedes it, and the
//! error columns compare what that consumer was served (measured max-abs
//! of the coarse synopsis) against the guarantee the exact synopsis
//! arrives with.
//!
//! Run with: `cargo run --release --example sensor_stream`

use dwmaxerr::core::dgreedy_abs::DGreedyAbsConfig;
use dwmaxerr::core::progressive::PhasedSynopsisDriver;
use dwmaxerr::datagen::wd_like;
use dwmaxerr::runtime::{Cluster, ClusterConfig};

fn main() {
    let n = 1 << 12; // window: the last 4 096 readings
    let batch = n / 16; // 256 readings arrive per tick
    let budget = n / 16;
    let cfg = DGreedyAbsConfig {
        base_leaves: 1 << 8,
        bucket_width: 1e-6,
        reducers: 2,
        max_candidates: None,
    };
    let cluster = Cluster::new(ClusterConfig::default());
    let mut driver = PhasedSynopsisDriver::new(n, budget, &cfg).expect("window setup");
    let handle = driver.handle(); // what a dashboard would hold

    // One long simulated feed, appended batch by batch. The first tick
    // fills the whole window (a full build); later ticks slide it.
    let feed = wd_like(4 * n, 2e-4, 7);
    let mut offset = 0usize;

    println!(
        "{:>4} {:>6} {:>6} {:>9} {:>12} {:>12} {:>9}",
        "tick", "dirty", "tasks", "stale(s)", "coarse err", "exact err", "version"
    );
    let mut first = true;
    while offset < feed.len() {
        let take = if first { n } else { batch };
        let chunk = &feed[offset..(offset + take).min(feed.len())];
        offset += chunk.len();
        first = false;

        let report = driver.tick(&cluster, chunk).expect("tick");
        println!(
            "{:>4} {:>6} {:>6} {:>9.3} {:>11.2}° {:>11.2}° {:>9}",
            report.exact_version / 2,
            report.dirty_bases,
            report.foreground_tasks + report.background_tasks,
            report.staleness_secs,
            report.coarse_error,
            report.exact_error,
            report.exact_version,
        );
    }

    let latest = handle.latest().expect("at least one tick ran");
    assert!(latest.value.exact);
    println!(
        "\nServed synopsis: {} coefficients, guaranteed max_abs {:.2}° \
         (window of {} readings, {} appended in total)",
        latest.value.synopsis.size(),
        latest
            .value
            .guaranteed_error
            .expect("exact answers carry a bound"),
        n,
        offset,
    );
}
