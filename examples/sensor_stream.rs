//! Deterministic error guarantees on sensor data: the dual problem.
//!
//! Wind-direction sensors (the paper's WD dataset) need a synopsis whose
//! *every* reading is within a known tolerance. This is Problem 2: given
//! an error bound ε, minimize the synopsis size — solved by the
//! distributed DMHaarSpace DP. The example sweeps tolerances and then uses
//! DIndirectHaar to answer the inverse question ("what is the best
//! tolerance a 1/16 budget buys?").
//!
//! Run with: `cargo run --release --example sensor_stream`

use dwmaxerr::algos::min_haar_space::MhsParams;
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::core::dmin_haar_space::{dmin_haar_space, DmhsConfig};
use dwmaxerr::datagen::wd_like;
use dwmaxerr::runtime::{Cluster, ClusterConfig};

fn main() {
    let n = 1 << 13; // 8 192 readings
    let data = wd_like(n, 2e-4, 7);
    let cluster = Cluster::new(ClusterConfig::default());
    let probe = DmhsConfig {
        base_leaves: 1 << 9,
        fan_in: 4,
    };

    println!("Problem 2: minimal synopsis size per error tolerance (δ = 0.5°)");
    println!(
        "{:>10} {:>10} {:>12} {:>14}",
        "ε (deg)", "size", "actual err", "compression"
    );
    for eps in [5.0, 10.0, 20.0, 45.0, 90.0] {
        let params = MhsParams::new(eps, 0.5).unwrap();
        let sol = dmin_haar_space(&cluster, &data, &params, &probe).expect("DP probe");
        assert!(sol.actual_error <= eps + 1e-9, "guarantee violated");
        println!(
            "{eps:>10.0} {:>10} {:>12.2} {:>13.1}x",
            sol.size,
            sol.actual_error,
            n as f64 / sol.size.max(1) as f64
        );
    }

    // Problem 1 via the dual: best error for a fixed budget.
    let b = n / 16;
    let cfg = DIndirectHaarConfig { delta: 1.0, probe };
    let res = dindirect_haar(&cluster, &data, b, &cfg).expect("binary search");
    println!(
        "\nDIndirectHaar: budget {b} -> max_abs {:.2}° with {} coefficients \
         ({} DP probes, simulated cluster time {})",
        res.error,
        res.synopsis.size(),
        res.probes,
        res.metrics.total_simulated(),
    );
}
