//! Summarizing a heavy-tailed taxi-trip-time series with a distributed
//! maximum-error synopsis (the paper's NYCT scenario, Figure 8).
//!
//! Builds an NYCT-like series, runs DGreedyAbs on a simulated 8-slave
//! cluster, and compares accuracy and running time against the
//! conventional synopsis (CON). Finishes by answering point and range
//! queries from the synopsis alone.
//!
//! Run with: `cargo run --release --example taxi_synopsis`

use dwmaxerr::core::conventional::con;
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::datagen::{nyct_like, DatasetStats};
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::wavelet::metrics;
use dwmaxerr::wavelet::reconstruct::range_sum_synopsis;

fn main() {
    let n = 1 << 16; // 65 536 trip records
    let b = n / 8; // the paper's B = N/8
    let data = nyct_like(n, 0.0, 42);
    let stats = DatasetStats::of(&data);
    println!(
        "NYCT-like: n={} avg={:.0}s stdev={:.0}s max={:.0}s",
        stats.count, stats.avg, stats.stdev, stats.max
    );

    // The paper's platform: 8 slaves × (5 map + 2 reduce) slots.
    let cluster = Cluster::new(ClusterConfig::default());

    let cfg = DGreedyAbsConfig {
        base_leaves: 1 << 12,
        bucket_width: 0.5, // half-second buckets on seconds data
        reducers: 4,
        max_candidates: None,
    };
    let d = dgreedy_abs(&cluster, &data, b, &cfg).expect("pipeline runs");
    let d_err = metrics::evaluate(&data, &d.synopsis, 1.0);
    println!(
        "\nDGreedyAbs: size={} max_abs={:.1}s  (sim cluster time {}, {} jobs, {} shuffle bytes)",
        d.synopsis.size(),
        d_err.max_abs,
        d.metrics.total_simulated(),
        d.metrics.job_count(),
        d.metrics.total_shuffle_bytes(),
    );

    let (conv, conv_metrics) = con(&cluster, &data, b, 1 << 12).expect("CON runs");
    let conv_err = metrics::evaluate(&data, &conv, 1.0);
    println!(
        "CON (L2):   size={} max_abs={:.1}s  (sim cluster time {})",
        conv.size(),
        conv_err.max_abs,
        conv_metrics.total_simulated(),
    );
    println!(
        "\nmax-error improvement over conventional: {:.1}x",
        conv_err.max_abs / d_err.max_abs
    );

    // Approximate query answering straight off the synopsis.
    println!("\nApproximate queries from the DGreedyAbs synopsis:");
    for j in [100usize, 4096, 50_000] {
        println!(
            "  trip[{j}]: true {:>6.0}s  approx {:>6.0}s",
            data[j],
            d.synopsis.reconstruct_value(j)
        );
    }
    let (lo, hi) = (1000usize, 9000usize);
    let truth: f64 = data[lo..=hi].iter().sum();
    let approx = range_sum_synopsis(&d.synopsis, lo, hi);
    println!(
        "  sum[{lo}..={hi}]: true {truth:.0}  approx {approx:.0}  ({:.2}% off)",
        (approx - truth).abs() / truth * 100.0
    );
}
