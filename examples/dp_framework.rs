//! The Section-4 framework's generality: one partitioning scheme, two DP
//! families.
//!
//! Runs the same layered MapReduce decomposition over (a) MinHaarSpace
//! (the dual Problem 2, `O(ε/δ)` rows) and (b) MinRelVar (the
//! budget-indexed probabilistic DP whose `(v, y, l)` cells appear in the
//! paper's Figure 2, `O(B·q)` rows), and prints the per-stage row traffic
//! of each — the measured version of the paper's argument for building
//! DIndirectHaar on the dual problem.
//!
//! Run with: `cargo run --release --example dp_framework`

use dwmaxerr::algos::min_haar_space::MhsParams;
use dwmaxerr::algos::min_rel_var::MrvParams;
use dwmaxerr::core::dmin_haar_space::{dmin_haar_space, DmhsConfig};
use dwmaxerr::core::dmin_rel_var::{dmin_rel_var, DmrvConfig};
use dwmaxerr::datagen::wd_like;
use dwmaxerr::runtime::{Cluster, ClusterConfig};

fn main() {
    let n = 1 << 12;
    let data = wd_like(n, 0.0, 13);
    let cluster = Cluster::new(ClusterConfig::default());

    // (a) DMHaarSpace: minimize size under an error bound.
    let eps = 20.0;
    let sol = dmin_haar_space(
        &cluster,
        &data,
        &MhsParams::new(eps, 1.0).unwrap(),
        &DmhsConfig {
            base_leaves: 256,
            fan_in: 4,
        },
    )
    .expect("DMHaarSpace runs");
    let mhs_row_bytes: u64 = sol
        .metrics
        .jobs
        .iter()
        .filter(|j| j.name.contains("layer"))
        .map(|j| j.shuffle_bytes)
        .sum();
    println!(
        "DMHaarSpace  (ε = {eps}): {} coefficients, actual error {:.1}, \
         {} bytes of M-rows exchanged",
        sol.size, sol.actual_error, mhs_row_bytes
    );

    // (b) DMinRelVar: minimize max relative error under an expected budget.
    cluster.clear_history();
    for b in [n / 64, n / 16, n / 8] {
        let cfg = DmrvConfig {
            base_leaves: 256,
            fan_in: 4,
            params: MrvParams::new(4, 1.0).unwrap(),
            seed: 99,
        };
        let sol = dmin_rel_var(&cluster, &data, b, &cfg).expect("DMinRelVar runs");
        let row_bytes: u64 = sol
            .metrics
            .jobs
            .iter()
            .filter(|j| j.name.contains("layer"))
            .map(|j| j.shuffle_bytes)
            .sum();
        println!(
            "DMinRelVar   (B = {b:>4}): expected size {:.1}, max-NSE² bound {:.5}, \
             {} bytes of M-rows exchanged",
            sol.expected_size, sol.nse_bound, row_bytes
        );
        cluster.clear_history();
    }
    println!(
        "\nThe MinRelVar rows grow with B (O(B·q) cells) while the MinHaarSpace \
         rows stay O(ε/δ) — Section 4's reason to solve the dual problem."
    );
}
