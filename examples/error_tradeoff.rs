//! Exploring the accuracy/space/metric tradeoff across all thresholding
//! families on one dataset.
//!
//! Sweeps the budget and prints max-abs, max-rel and L2 for: the
//! conventional (L2-optimal) synopsis, GreedyAbs, GreedyRel, and the
//! DP-optimal IndirectHaar — the decision table a practitioner needs when
//! picking a thresholding strategy (Section 1's motivation).
//!
//! Run with: `cargo run --release --example error_tradeoff`

use dwmaxerr::algos::greedy_rel::greedy_rel_synopsis;
use dwmaxerr::algos::indirect_haar::indirect_haar_centralized;
use dwmaxerr::algos::{conventional_synopsis, greedy_abs_synopsis};
use dwmaxerr::datagen::synthetic::zipf;
use dwmaxerr::wavelet::metrics::evaluate;
use dwmaxerr::wavelet::transform::forward;
use dwmaxerr::wavelet::Synopsis;

fn main() {
    let n = 1 << 12;
    let sanity = 1.0;
    let data = zipf(n, 1000.0, 0.7, 11);
    let coeffs = forward(&data).unwrap();

    println!(
        "{:<8} {:<14} {:>10} {:>10} {:>10} {:>8}",
        "B", "algorithm", "max_abs", "max_rel", "L2", "size"
    );
    for b in [n / 64, n / 16, n / 8, n / 4] {
        let row = |name: &str, syn: &Synopsis| {
            let e = evaluate(&data, syn, sanity);
            println!(
                "{:<8} {:<14} {:>10.3} {:>10.3} {:>10.3} {:>8}",
                b,
                name,
                e.max_abs,
                e.max_rel,
                e.l2,
                syn.size()
            );
        };
        let conv = conventional_synopsis(&coeffs, b).unwrap();
        row("conventional", &conv);
        let (ga, _) = greedy_abs_synopsis(&coeffs, b).unwrap();
        row("GreedyAbs", &ga);
        let (gr, _) = greedy_rel_synopsis(&coeffs, &data, b, sanity).unwrap();
        row("GreedyRel", &gr);
        let dp = indirect_haar_centralized(&data, b, 2.0).unwrap();
        row("IndirectHaar", &dp.synopsis);
        println!();
    }
    println!("Expected shape: GreedyAbs/IndirectHaar minimize max_abs,");
    println!("GreedyRel minimizes max_rel, conventional minimizes L2.");
}
