//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal, API-compatible subset of `rand` 0.8: a
//! deterministic xoshiro256** generator behind [`rngs::StdRng`], the
//! [`SeedableRng`]/[`Rng`] traits, and uniform range sampling for the
//! numeric types the workspace draws. Streams are deterministic under
//! `seed_from_u64` (they do not bit-match upstream `rand`, which is fine:
//! every consumer treats the stream as an opaque seeded source).

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts a `u64` word to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the 64-bit seed into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(2.5..3.5f64);
            assert!((2.5..3.5).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(10usize..=12);
            assert!((10..=12).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
