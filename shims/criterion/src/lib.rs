//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal subset of the criterion 0.5 API. It keeps the
//! bench sources compiling and produces honest (if statistically naive)
//! mean-of-N timings on `cargo bench`; under `cargo test` (which runs
//! `harness = false` bench targets with `--test`) each benchmark body runs
//! exactly once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, echoed in reports).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `f`, running it `samples` times (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Records the group's throughput annotation (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = effective_samples(self.criterion, self.samples);
        run_one(&full, samples, f);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
pub struct Criterion {
    samples: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

fn effective_samples(c: &Criterion, configured: usize) -> usize {
    if c.test_mode {
        1
    } else {
        configured
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench {name:<50} {:>12.3?} /iter ({} samples)",
        b.last_mean, samples
    );
}

impl Criterion {
    /// Sets the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = effective_samples(self, self.samples);
        run_one(name, samples, f);
        self
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("f", 4), |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("g", 1), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_smoke() {
        benches();
    }
}
