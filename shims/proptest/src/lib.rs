//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal subset of the proptest 1.x API: the [`proptest!`]
//! macro, `prop_assert*!` macros, range/tuple/collection strategies with
//! `prop_map`/`prop_flat_map`, `any::<T>()`, and [`ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its inputs (via `Debug`) and the
//!   case index, which is reproducible because the runner is seeded
//!   deterministically from the test function's name;
//! * strategies generate values directly instead of building value trees.

use std::fmt;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error type carried by `prop_assert*!` failures inside property bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    //! Deterministic case generator.

    /// The runner's RNG: SplitMix64, seeded from the test name so each
    //  property gets an independent but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary byte string (the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a folds the name into the initial state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerates, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::test_runner::TestRng;
    use super::Strategy;
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws a value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::test_runner::TestRng;
    use super::Strategy;
    use std::fmt;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` values.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, size)` — vectors with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies.

    use super::test_runner::TestRng;
    use super::Strategy;
    use std::fmt;

    /// Strategy returned by [`of`].
    #[derive(Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(inner)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        OptionStrategy { inner }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Rejects the current case unless `cond` holds (shim: treated as pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a standard test running `config.cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&{ $strat }, &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy_exports::*;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// The `prop` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[doc(hidden)]
pub mod strategy_exports {
    pub use crate::{Filter, FlatMap, Map};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0i64..5, -3.0..3.0f64)) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!((-3.0..3.0).contains(&b));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u64>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn flat_map_fixed_len(v in (1u32..=4).prop_flat_map(|k| {
            prop::collection::vec(-1.0..1.0f64, (1usize << k)..=(1usize << k))
        })) {
            prop_assert!(v.len().is_power_of_two());
            prop_assert!(v.len() >= 2 && v.len() <= 16);
        }

        #[test]
        fn early_return_ok(n in 0usize..4) {
            if n == 0 { return Ok(()); }
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen_seq = || {
            let mut rng = crate::test_runner::TestRng::from_name("seq");
            (0..8)
                .map(|_| crate::Strategy::generate(&(0u64..1000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(), gen_seq());
    }
}
