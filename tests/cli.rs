//! End-to-end tests of the `dwm` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn dwm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dwm"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dwm-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_build_eval_query_pipeline() {
    let data = tmp("data.csv");
    let syn = tmp("syn.csv");

    let out = dwm()
        .args(["gen", "--kind", "wd", "--n", "1024", "--seed", "7"])
        .args(["--out", data.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = dwm()
        .args(["build", "--input", data.to_str().unwrap()])
        .args(["--budget", "128", "--algo", "greedy-abs"])
        .args(["--out", syn.to_str().unwrap()])
        .output()
        .expect("build runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("built greedy-abs synopsis"), "{stderr}");

    let out = dwm()
        .args(["eval", "--input", data.to_str().unwrap()])
        .args(["--synopsis", syn.to_str().unwrap()])
        .output()
        .expect("eval runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max_abs:"), "{stdout}");
    assert!(stdout.contains("coefficients: "), "{stdout}");

    let out = dwm()
        .args(["query", "--synopsis", syn.to_str().unwrap(), "--point", "5"])
        .output()
        .expect("query runs");
    assert!(out.status.success());
    let v: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(v.is_finite());

    let out = dwm()
        .args(["query", "--synopsis", syn.to_str().unwrap()])
        .args(["--range", "0", "1023"])
        .output()
        .expect("range query runs");
    assert!(out.status.success());
    let sum: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(sum.is_finite() && sum > 0.0);

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&syn);
}

#[test]
fn build_pads_non_power_of_two_input() {
    let data = tmp("odd.csv");
    let syn = tmp("odd-syn.csv");
    let values: String = (0..1000).map(|i| format!("{}\n", i % 50)).collect();
    std::fs::write(&data, values).unwrap();
    let out = dwm()
        .args(["build", "--input", data.to_str().unwrap()])
        .args(["--budget", "64", "--algo", "conventional"])
        .args(["--out", syn.to_str().unwrap()])
        .output()
        .expect("build runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("padded 1000 values to 1024"), "{stderr}");
    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&syn);
}

#[test]
fn helpful_errors() {
    let out = dwm().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = dwm().args(["build", "--algo", "nope"]).output().unwrap();
    assert!(!out.status.success());

    let out = dwm()
        .args(["query", "--synopsis", "/nonexistent", "--point", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
