//! Executor-determinism acceptance tests: the work-stealing thread pool
//! must be *observationally invisible*. Running the identical workload at
//! `threads = 1` (fully inline, zero workers) and `threads = N` (real
//! concurrency for map attempts, reduce attempts, spill sorts, and merge
//! passes) must produce
//!
//! * bit-identical output pairs,
//! * identical JSONL trace exports modulo host-measured timestamps —
//!   compared via the [`TraceEvent::digest`] redaction the golden-trace
//!   tests pin (timestamps are wall-clock measurements and legitimately
//!   differ run to run even at a fixed thread count),
//! * identical [`DriverMetrics::structural_digest`] ledgers (task/attempt
//!   structure, spill and merge ledgers, byte and record counters,
//!   recovery stats — everything except measured seconds),
//!
//! including under an injected [`FaultPlan`] with targeted attempt
//! failures, a node kill that loses completed map outputs, and corrupt
//! stored runs — on both spill backends, with the spill buffer and merge
//! fan-in squeezed so the external multi-pass merge paths all engage.

use std::time::Duration;

use dwmaxerr::runtime::trace::{self, TraceEvent};
use dwmaxerr::runtime::{
    Cluster, ClusterConfig, DriverMetrics, FaultPlan, JobBuilder, MapContext, Pipeline,
    ReduceContext, SpillBackend, TaskPhase,
};
use proptest::prelude::*;

/// Which fault story a scenario injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Faults {
    /// Perfect cluster.
    None,
    /// First attempts of map task 0 and reduce task 0 fail; retries win.
    Targeted,
    /// Node 0 dies after every map attempt completed (sim time 1000 s is
    /// far past any task end here) *and* map task 0's stored run is
    /// corrupted: reducers hit checksum failures and lost outputs, retry
    /// their fetches, and force map re-execution.
    NodeKillAndCorruption,
}

/// One randomized workload shape.
#[derive(Debug, Clone)]
struct Scenario {
    splits: Vec<Vec<u64>>,
    reducers: usize,
    faults: Faults,
    /// Squeeze `io_sort_bytes`/`io_sort_factor` so maps spill
    /// mid-attempt and reducers need intermediate merge passes — the
    /// paths the executor parallelizes beyond whole-task fan-out.
    tiny_sort: bool,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(prop::collection::vec(0u64..64, 0..24), 1..=4),
        1usize..=3,
        (0u8..=2).prop_map(|f| match f {
            0 => Faults::None,
            1 => Faults::Targeted,
            _ => Faults::NodeKillAndCorruption,
        }),
        any::<bool>(),
        0u64..1_000,
    )
        .prop_map(|(mut splits, reducers, faults, tiny_sort, seed)| {
            // The runtime rejects zero-split jobs, so guarantee stage 1
            // emits at least one pair for stage 2 to consume.
            splits[0].push(seed % 64);
            Scenario {
                splits,
                reducers,
                faults,
                tiny_sort,
                seed,
            }
        })
}

/// Everything a run can leak about its schedule, host timings redacted.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    pairs: Vec<(u64, u64)>,
    /// [`TraceEvent::digest`] lines, parsed back from the JSONL export so
    /// the comparison covers the serialized trace, not just the in-memory
    /// events.
    trace: String,
    driver_digest: u64,
    jobs: usize,
}

/// Builds the scenario's cluster at `threads` host threads. Slots cover
/// every task in *both* stages (single wave — stage 2 has at most one
/// split per scatter key, and scatter keys live in `0..16`) and
/// speculation is off, so the simulated schedule is forced; the thread
/// count must then be unobservable. With fewer slots than tasks the
/// scheduler places later waves on whichever slot the measured timings
/// say frees first, which legitimately varies run to run.
fn cluster_for(scenario: &Scenario, backend: SpillBackend, threads: usize) -> Cluster {
    let mut cfg = ClusterConfig::with_slots(scenario.splits.len().max(16), scenario.reducers);
    cfg.threads = threads;
    cfg.nodes = 2;
    cfg.task_startup = Duration::from_micros(10);
    cfg.job_setup = Duration::from_micros(10);
    cfg.speculative_execution = false;
    cfg.spill_backend = backend;
    if scenario.tiny_sort {
        cfg.io_sort_bytes = 256;
        cfg.io_sort_factor = 2;
    }
    cfg.fault_plan = match scenario.faults {
        Faults::None => None,
        Faults::Targeted => Some(
            FaultPlan::seeded(scenario.seed)
                .with_targeted(TaskPhase::Map, 0, vec![1])
                .with_targeted(TaskPhase::Reduce, 0, vec![1]),
        ),
        Faults::NodeKillAndCorruption => Some(
            FaultPlan::seeded(scenario.seed)
                .with_node_failure(0, 1000.0)
                .with_corrupt_run(0),
        ),
    };
    Cluster::new(cfg)
}

/// Runs a two-stage pipeline and fingerprints it. Both reduces fold their
/// values with a *non-commutative* hash, so any reordering introduced by
/// parallel spill sorts, the loser-tree merge, or parallel merge groups
/// changes the output bits instead of vanishing into a commutative sum.
fn run_scenario(scenario: &Scenario, backend: SpillBackend, threads: usize) -> Fingerprint {
    let order_fold = |vals: &mut dyn Iterator<Item = u64>| {
        vals.fold(0x811C_9DC5u64, |h, v| {
            h.rotate_left(5) ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        })
    };
    let scatter = JobBuilder::new("scatter")
        .map(|split: &Vec<u64>, ctx: &mut MapContext<u64, u64>| {
            for (i, &x) in split.iter().enumerate() {
                ctx.emit(x % 16, x.wrapping_mul(31).wrapping_add(i as u64));
            }
        })
        .reducers(scenario.reducers)
        .reduce(move |k, vals, ctx: &mut ReduceContext<u64, u64>| {
            ctx.emit(*k, order_fold(vals));
        });
    let tally = JobBuilder::new("tally")
        .map(|kv: &(u64, u64), ctx: &mut MapContext<u64, u64>| {
            ctx.emit(kv.0 % 4, kv.1 ^ kv.0);
        })
        .reducers(scenario.reducers)
        .reduce(move |k, vals, ctx: &mut ReduceContext<u64, u64>| {
            ctx.emit(*k, order_fold(vals));
        });

    let cluster = cluster_for(scenario, backend, threads);
    let staged = Pipeline::on(&cluster)
        .stage(&scatter, &scenario.splits)
        .expect("scatter survives the fault plan")
        .then(|((), pairs)| pairs);
    let mid = staged.value().clone();
    let (pairs, metrics): (Vec<(u64, u64)>, DriverMetrics) = {
        let done = staged.stage(&tally, &mid).expect("tally survives");
        let pairs = done.value().1.clone();
        (pairs, done.into_metrics())
    };

    let events = cluster.trace_events();
    trace::validate(&events).expect("trace is well-formed at every thread count");
    let doc = trace::to_jsonl(&events);
    let parsed = trace::from_jsonl(&doc).expect("JSONL export round-trips");
    let trace = parsed
        .iter()
        .map(TraceEvent::digest)
        .collect::<Vec<_>>()
        .join("\n");
    Fingerprint {
        pairs,
        trace,
        driver_digest: metrics.structural_digest(),
        jobs: metrics.job_count(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Satellite 3: threads=1 vs threads=N are bitwise indistinguishable —
    // output pairs, JSONL trace digests, and the DriverMetrics structural
    // ledger — across random workloads, all three fault stories, and both
    // spill backends.
    #[test]
    fn threaded_runs_are_bitwise_identical_to_serial(s in scenario()) {
        for backend in [SpillBackend::Memory, SpillBackend::Disk] {
            let serial = run_scenario(&s, backend, 1);
            prop_assert!(serial.jobs == 2, "pipeline ran both stages");
            for threads in [2usize, 4] {
                let parallel = run_scenario(&s, backend, threads);
                prop_assert_eq!(
                    &serial, &parallel,
                    "{:?} at threads={} diverged from serial", backend, threads
                );
            }
        }
    }
}

/// The golden-trace workload from `trace_semantics.rs`, replayed at every
/// thread count: the exact event sequence the golden test pins must come
/// out of the parallel executor too, not merely *some* stable sequence.
#[test]
fn golden_trace_sequence_is_thread_count_invariant() {
    let run = |threads: usize| {
        let mut cfg = ClusterConfig::with_slots(2, 1);
        cfg.threads = threads;
        cfg.task_startup = Duration::from_micros(10);
        cfg.job_setup = Duration::from_micros(10);
        cfg.speculative_execution = false;
        cfg.fault_plan = Some(
            FaultPlan::seeded(3)
                .with_targeted(TaskPhase::Map, 0, vec![1])
                .with_targeted(TaskPhase::Reduce, 0, vec![1]),
        );
        let cluster = Cluster::new(cfg);
        JobBuilder::new("sum")
            .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, *s))
            .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| ctx.emit(*k, vals.sum()))
            .run(&cluster, &[1, 2])
            .expect("job succeeds");
        cluster
            .trace_events()
            .iter()
            .map(TraceEvent::digest)
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    assert!(serial.contains(&"attempt(sum map0 a1 regular failed injected)".to_string()));
    for threads in [2, 3, 4, 8] {
        assert_eq!(serial, run(threads), "trace drifted at threads={threads}");
    }
}

/// Heavier deterministic pin of the hardest combination: disk backend,
/// squeezed spill budget and fan-in (mid-task spills + multi-pass
/// merges), a node kill *and* a corrupt run — the recovery ledger
/// (re-executions, fetch retries, corrupt-run detections) must land
/// identically at every thread count.
#[test]
fn node_kill_recovery_ledger_is_thread_count_invariant() {
    let s = Scenario {
        splits: (0..6)
            .map(|t| (0..48).map(|i| (t * 31 + i * 7) % 64).collect())
            .collect(),
        reducers: 3,
        faults: Faults::NodeKillAndCorruption,
        tiny_sort: true,
        seed: 7,
    };
    let serial = run_scenario(&s, SpillBackend::Disk, 1);
    assert!(
        serial.trace.contains("map_reexecuted"),
        "scenario failed to exercise recovery:\n{}",
        serial.trace
    );
    for threads in [2, 4] {
        assert_eq!(
            serial,
            run_scenario(&s, SpillBackend::Disk, threads),
            "recovery diverged at threads={threads}"
        );
    }
}

/// `DriverMetrics::structural_digest` itself must be sensitive enough to
/// be worth comparing: distinct workloads must not collide trivially.
#[test]
fn structural_digest_distinguishes_different_workloads() {
    let base = Scenario {
        splits: vec![vec![1, 2, 3], vec![4, 5, 6]],
        reducers: 2,
        faults: Faults::None,
        tiny_sort: false,
        seed: 0,
    };
    let mut faulty = base.clone();
    faulty.faults = Faults::Targeted;
    let a = run_scenario(&base, SpillBackend::Memory, 1);
    let b = run_scenario(&faulty, SpillBackend::Memory, 1);
    assert_ne!(
        a.driver_digest, b.driver_digest,
        "digest blind to injected retries"
    );
}
