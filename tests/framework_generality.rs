//! Integration tests of the Section-4 framework's generality: all three DP
//! families run through the same layered decomposition on the dataset
//! surrogates, and budget edge cases behave.

use dwmaxerr::algos::min_haar_space::MhsParams;
use dwmaxerr::algos::min_rel_var::MrvParams;
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dhaar_plus::{dhaar_plus, DhpConfig};
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::core::dmin_haar_space::{dmin_haar_space, DmhsConfig};
use dwmaxerr::core::dmin_rel_var::{dmin_rel_var, DmrvConfig};
use dwmaxerr::datagen::{nyct_like, wd_like};
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::wavelet::metrics::max_abs;

fn cluster() -> Cluster {
    let mut cfg = ClusterConfig::with_slots(8, 4);
    cfg.task_startup = std::time::Duration::from_micros(10);
    cfg.job_setup = std::time::Duration::from_micros(10);
    Cluster::new(cfg)
}

#[test]
fn three_dp_families_share_the_framework_on_wd() {
    let n = 1 << 10;
    let data = wd_like(n, 1e-4, 101);
    let c = cluster();
    let eps = 15.0;

    // Family 1: unrestricted Haar (DMHaarSpace).
    let mhs = dmin_haar_space(
        &c,
        &data,
        &MhsParams::new(eps, 1.0).unwrap(),
        &DmhsConfig {
            base_leaves: 128,
            fan_in: 4,
        },
    )
    .unwrap();
    assert!(mhs.actual_error <= eps + 1e-9);

    // Family 2: Haar+ triads (DHaarPlus) — never more nodes than family 1.
    let hp = dhaar_plus(
        &c,
        &data,
        &MhsParams::new(eps, 1.0).unwrap(),
        &DhpConfig {
            base_leaves: 128,
            fan_in: 4,
        },
    )
    .unwrap();
    assert!(hp.actual_error <= eps + 1e-9);
    assert!(hp.size <= mhs.size, "Haar+ {} > Haar {}", hp.size, mhs.size);

    // Family 3: MinRelVar (budget-indexed probabilistic DP).
    let mrv = dmin_rel_var(
        &c,
        &data,
        n / 8,
        &DmrvConfig {
            base_leaves: 128,
            fan_in: 4,
            params: MrvParams::new(2, 1.0).unwrap(),
            seed: 9,
        },
    )
    .unwrap();
    assert!(mrv.expected_size <= (n / 8) as f64 + 1e-9);
    assert!(mrv.nse_bound.is_finite());

    // All three ran real multi-stage job chains.
    for (name, jobs) in [
        ("DMHaarSpace", mhs.metrics.job_count()),
        ("DHaarPlus", hp.metrics.job_count()),
        ("DMinRelVar", mrv.metrics.job_count()),
    ] {
        assert!(jobs >= 3, "{name} ran only {jobs} jobs");
    }
}

#[test]
fn budget_edges_on_nyct() {
    let n = 1 << 10;
    let data = nyct_like(n, 0.0, 103);
    let c = cluster();

    // b = 1: a single coefficient must be the grand average region.
    let one = dgreedy_abs(
        &c,
        &data,
        1,
        &DGreedyAbsConfig {
            base_leaves: 128,
            bucket_width: 1.0,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    assert!(one.synopsis.size() <= 1);

    // b = n: lossless.
    let all = dgreedy_abs(
        &c,
        &data,
        n,
        &DGreedyAbsConfig {
            base_leaves: 128,
            bucket_width: 1e-9,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    assert!(max_abs(&data, &all.synopsis.reconstruct_all()) < 1e-6);

    // DIndirectHaar with a tiny budget still terminates and respects it.
    let tiny = dindirect_haar(
        &c,
        &data,
        2,
        &DIndirectHaarConfig {
            delta: 50.0,
            probe: DmhsConfig {
                base_leaves: 128,
                fan_in: 4,
            },
        },
    )
    .unwrap();
    assert!(tiny.synopsis.size() <= 2);
    assert!(tiny.error.is_finite());
}
