//! Trace subsystem guarantees, pinned at the workspace level:
//!
//! * a small deterministic job produces a **golden event sequence**
//!   (timestamps redacted via [`TraceEvent::digest`] — measured durations
//!   vary run to run, the structure must not),
//! * every trace a real pipeline produces passes [`trace::validate`]
//!   (span pairing, phase ordering, per-slot non-overlap),
//! * a fault-injected run records the recovery it performed: retry
//!   attempts, fault instants, and speculative attempts all appear,
//! * the trace timeline and [`DriverMetrics`] agree **bit-for-bit**: the
//!   per-stage simulated sums and the ledger total equal the span totals
//!   and the sink's final clock,
//! * the JSONL export round-trips exactly and the Chrome export parses.

use dwmaxerr::runtime::metrics::AttemptKind;
use dwmaxerr::runtime::trace::{self, json, summary, TraceEvent, TraceEventKind};
use dwmaxerr::runtime::{Cluster, ClusterConfig, FaultPlan, JobBuilder, Pipeline, TaskPhase};
use dwmaxerr::runtime::{MapContext, ReduceContext};

/// A 2-map-slot, 1-reduce-slot cluster with speculation off and targeted
/// faults on the first attempts of map task 0 and reduce task 0: every
/// scheduling decision is forced, so the event sequence is deterministic.
fn golden_cluster() -> Cluster {
    let mut cfg = ClusterConfig::with_slots(2, 1);
    cfg.task_startup = std::time::Duration::from_micros(10);
    cfg.job_setup = std::time::Duration::from_micros(10);
    cfg.speculative_execution = false;
    cfg.fault_plan = Some(
        FaultPlan::seeded(3)
            .with_targeted(TaskPhase::Map, 0, vec![1])
            .with_targeted(TaskPhase::Reduce, 0, vec![1]),
    );
    Cluster::new(cfg)
}

fn sum_job() -> impl Fn(&Cluster, &[u64]) -> Vec<TraceEvent> {
    |cluster, splits| {
        JobBuilder::new("sum")
            .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, *s))
            .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| ctx.emit(*k, vals.sum()))
            .run(cluster, splits)
            .expect("job succeeds");
        cluster.trace_events()
    }
}

#[test]
fn golden_event_sequence_for_deterministic_job() {
    let events = sum_job()(&golden_cluster(), &[1, 2]);
    let digests: Vec<String> = events.iter().map(TraceEvent::digest).collect();
    let expected = [
        "job_begin(sum maps=2 reducers=1)",
        "phase_begin(sum setup slots=0)",
        "phase_end(sum setup)",
        "phase_begin(sum map slots=2)",
        "wave(sum map w0 started=2)",
        "attempt(sum map0 a1 regular failed injected)",
        "fault_injected(sum map0 a1)",
        "attempt(sum map1 a1 regular ok -)",
        "attempt(sum map0 a2 retry ok -)",
        "phase_end(sum map)",
        "phase_begin(sum shuffle slots=0)",
        // 2 records x (1-byte u8 key + 8-byte u64 value).
        "shuffle_partition(sum p0 bytes=18)",
        "phase_end(sum shuffle)",
        "phase_begin(sum reduce slots=1)",
        "wave(sum reduce w0 started=1)",
        "attempt(sum reduce0 a1 regular failed injected)",
        "fault_injected(sum reduce0 a1)",
        "attempt(sum reduce0 a2 retry ok -)",
        "phase_end(sum reduce)",
        "job_end(sum)",
    ];
    assert_eq!(digests, expected, "golden trace sequence drifted");
    // Sequence numbers are dense from zero; the golden run is the sink's
    // whole history.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
    trace::validate(&events).expect("golden trace is well-formed");
}

#[test]
fn golden_sequence_is_stable_across_runs() {
    let digest = |events: &[TraceEvent]| {
        events
            .iter()
            .map(TraceEvent::digest)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = sum_job()(&golden_cluster(), &[1, 2]);
    let b = sum_job()(&golden_cluster(), &[1, 2]);
    assert_eq!(digest(&a), digest(&b));
}

/// A paper-shaped cluster where map time is dominated by a deterministic
/// simulated HDFS read (8 KiB at 80 KiB/s = 100 ms per split) so the 6x
/// straggler on map task 0 reliably outruns the speculation threshold —
/// the same recipe the fault-sweep experiment uses.
fn speculative_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        fault_plan: Some(
            FaultPlan::seeded(9)
                .with_targeted(TaskPhase::Map, 2, vec![1])
                .with_straggler(TaskPhase::Map, 0, 6.0),
        ),
        hdfs_bytes_per_sec: 80.0 * 1024.0,
        ..ClusterConfig::default()
    })
}

#[test]
fn fault_injected_run_traces_retries_and_speculation() {
    let cluster = speculative_cluster();
    let splits: Vec<u64> = (0..8).collect();
    JobBuilder::new("spec")
        .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, *s))
        .input_bytes(|_| 8 * 1024)
        .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| ctx.emit(*k, vals.sum()))
        .run(&cluster, &splits)
        .expect("job succeeds");
    let events = cluster.trace_events();
    trace::validate(&events).expect("trace is well-formed");

    let attempts_of = |k: AttemptKind| {
        events
            .iter()
            .filter(|e| matches!(&e.kind, TraceEventKind::Attempt { kind, .. } if *kind == k))
            .count()
    };
    assert!(attempts_of(AttemptKind::Retry) >= 1, "no retry span");
    assert!(
        attempts_of(AttemptKind::Speculative) >= 1,
        "no speculative span"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::FaultInjected { task: 2, .. })),
        "injected fault not marked"
    );
    // Killed speculative losers (or killed originals) show up as killed
    // spans; the winner of each race succeeds.
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            TraceEventKind::Attempt { outcome, .. }
                if *outcome == dwmaxerr::runtime::AttemptOutcome::Killed
        )),
        "speculation race left no killed attempt"
    );
}

#[test]
fn aborted_job_leaves_abort_event() {
    let mut cfg = ClusterConfig::with_slots(2, 1);
    cfg.fault_plan = Some(FaultPlan::seeded(0).with_targeted(TaskPhase::Map, 0, vec![1, 2, 3, 4]));
    let cluster = Cluster::new(cfg);
    let result = JobBuilder::new("doomed")
        .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, *s))
        .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| ctx.emit(*k, vals.sum()))
        .run(&cluster, &[1, 2]);
    assert!(result.is_err());
    let events = cluster.trace_events();
    trace::validate(&events).expect("aborted trace is still well-formed");
    assert!(
        events.iter().any(|e| matches!(
            &e.kind,
            TraceEventKind::JobAborted { job, reason }
                if job == "doomed" && reason.contains("4 attempts")
        )),
        "no abort event: {events:?}"
    );
}

/// Runs a three-iteration looped pipeline (stage name repeated) plus a
/// distinct final stage, returning the ledger and the trace.
fn looped_pipeline(cluster: &Cluster) -> dwmaxerr::runtime::DriverMetrics {
    let halve = JobBuilder::new("halve")
        .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, s / 2))
        .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| {
            ctx.emit(*k, vals.next().expect("one"))
        });
    let total = JobBuilder::new("total")
        .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, *s))
        .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| ctx.emit(*k, vals.sum()));
    let pipe = Pipeline::with(cluster, vec![8u64])
        .repeat(
            |v: &Vec<u64>| v[0] > 1,
            |p| {
                let input = p.value().clone();
                Ok::<_, dwmaxerr::runtime::RuntimeError>(
                    p.stage(&halve, &input)?
                        .then(|(_, pairs)| pairs.into_iter().map(|(_, v)| v).collect()),
                )
            },
        )
        .unwrap();
    let input = pipe.value().clone();
    pipe.stage(&total, &input).unwrap().into_metrics()
}

#[test]
fn per_stage_metrics_agree_with_trace_span_totals_bitwise() {
    let cluster = golden_cluster();
    let metrics = looped_pipeline(&cluster);
    let events = cluster.trace_events();
    trace::validate(&events).expect("pipeline trace is well-formed");

    // Same stages, same run counts, and *bit-identical* simulated sums:
    // the sink's clock advances by each job's `sim.total()` in ledger
    // order, so no float tolerance is needed.
    let stages = metrics.per_stage();
    let spans = summary::job_span_totals(&events);
    assert_eq!(stages.len(), spans.len(), "stage/span row mismatch");
    for (s, t) in stages.iter().zip(&spans) {
        assert_eq!(s.name, t.name);
        assert_eq!(s.runs, t.runs);
        assert_eq!(
            s.simulated.secs().to_bits(),
            t.sim_secs.to_bits(),
            "{}: per_stage simulated != trace span total",
            s.name
        );
    }
    // The sink's final clock equals the ledger's total, bit for bit.
    assert_eq!(
        cluster.trace().now().to_bits(),
        metrics.total_simulated().secs().to_bits()
    );

    // Pipeline markers: one stage_begin/stage_end pair per executed job
    // (3 halve runs + 1 total run) and one glue instant per `then`.
    let count = |f: &dyn Fn(&TraceEventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::StageBegin { .. })),
        metrics.job_count()
    );
    assert_eq!(
        count(&|k| matches!(k, TraceEventKind::StageEnd { .. })),
        metrics.job_count()
    );
    assert_eq!(count(&|k| matches!(k, TraceEventKind::Glue)), 3);
}

#[test]
fn jsonl_round_trips_and_chrome_export_parses() {
    let cluster = speculative_cluster();
    let splits: Vec<u64> = (0..8).collect();
    JobBuilder::new("spec")
        .map(|s: &u64, ctx: &mut MapContext<u8, u64>| ctx.emit(0, *s))
        .input_bytes(|_| 8 * 1024)
        .reduce(|k, vals, ctx: &mut ReduceContext<u8, u64>| ctx.emit(*k, vals.sum()))
        .run(&cluster, &splits)
        .expect("job succeeds");
    let events = cluster.trace_events();

    // Whole-document and per-line round-trips are exact.
    let doc = trace::to_jsonl(&events);
    assert_eq!(trace::from_jsonl(&doc).expect("parses"), events);
    for line in doc.lines() {
        let event = TraceEvent::from_jsonl(line).expect("line parses");
        assert_eq!(event.to_jsonl(), line, "line is not serialization-stable");
    }

    // The Chrome export is valid JSON with the structure a viewer needs.
    let chrome = trace::chrome_trace(&events);
    let parsed = json::parse(&chrome).expect("chrome trace parses");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    let spans = trace_events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .count();
    let job_spans = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::JobEnd { .. }))
        .count();
    let attempt_spans = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::Attempt { .. }))
        .count();
    let phase_spans = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::PhaseEnd { .. }))
        .count();
    assert_eq!(
        spans,
        job_spans + attempt_spans + phase_spans,
        "every closed span becomes one Chrome X event"
    );
}
