//! Acceptance tests for the sharded synopsis-serving query layer.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Bounds hold** — property tests over uniform and zipf data assert
//!    that every served point and range answer is within its advertised
//!    error bound of the exact value computed from the raw data — for
//!    the absolute bound (DGreedyAbs, widened by one bucket) and the
//!    relative bound (DGreedyRel with its sanity constant) alike.
//! 2. **Readers stay pinned** — a reader taken at store version *v*
//!    keeps answering from *v* bit for bit across snapshot swaps landing
//!    mid-batch, both in a deterministic interleaving and under a
//!    genuinely concurrent publisher thread.
//! 3. **Sharded ≡ reference** — the sharded evaluators agree with the
//!    unsharded [`point_answer`]/[`range_answer`] reference evaluators
//!    (up to floating-point summation order) at every shard count.

use std::time::Duration;

use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dgreedy_rel::{dgreedy_rel, DGreedyRelConfig};
use dwmaxerr::core::query::{point_answer, range_answer, ErrorBound};
use dwmaxerr::datagen::{uniform, zipf};
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::serve::{Query, SynopsisStore};
use proptest::prelude::*;

const N: usize = 256;
const BASE: usize = 16;

fn cluster() -> Cluster {
    let mut cfg = ClusterConfig::with_slots(4, 2);
    cfg.task_startup = Duration::from_millis(1);
    cfg.job_setup = Duration::from_millis(1);
    Cluster::new(cfg)
}

fn abs_cfg() -> DGreedyAbsConfig {
    DGreedyAbsConfig {
        base_leaves: BASE,
        bucket_width: 1e-9,
        reducers: 2,
        max_candidates: None,
    }
}

fn workload(zipfian: bool, seed: u64) -> Vec<f64> {
    if zipfian {
        zipf(N, 1000.0, 1.1, seed)
    } else {
        uniform(N, 1000.0, seed)
    }
}

/// Exact range sums via prefix sums over the raw data.
fn prefix_sums(data: &[f64]) -> Vec<f64> {
    let mut p = vec![0.0; data.len() + 1];
    for (i, &v) in data.iter().enumerate() {
        p[i + 1] = p[i] + v;
    }
    p
}

/// A deterministic set of ranges covering widths from 1 to the full
/// window, shard-local and shard-crossing alike.
fn test_ranges() -> Vec<(usize, usize)> {
    let mut r = vec![(0, N - 1), (0, 0), (N - 1, N - 1), (BASE - 1, BASE)];
    for w in [1usize, 3, BASE, 3 * BASE, N / 2] {
        for l in (0..N - w).step_by(N / 8) {
            r.push((l, l + w - 1));
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Satellite 4 (absolute bound): on uniform and zipf data, every
    // served point and range answer is within its advertised err_abs of
    // the exact raw-data value — at several shard counts, and the
    // answers survive a mid-batch snapshot swap bit for bit.
    #[test]
    fn served_answers_within_abs_bound(
        seed in 0u64..1_000_000,
        zipf_sel in 0u8..2,
        budget in 16usize..64,
        shard_sel in 0usize..4,
    ) {
        let zipfian = zipf_sel == 1;
        let shards = [2usize, 8, 32, 128][shard_sel];
        let data = workload(zipfian, seed);
        let prefix = prefix_sums(&data);
        let cfg = abs_cfg();
        let build = dgreedy_abs(&cluster(), &data, budget, &cfg).unwrap();
        let bound = ErrorBound::from_dgreedy_abs(&build, &cfg);

        let store = SynopsisStore::new("proptest-abs", shards);
        store.publish(&build.synopsis, bound, 1.0, 1).unwrap();
        let reader = store.reader().unwrap();

        // Every point, singly and reference-checked.
        for (x, &d) in data.iter().enumerate() {
            let a = reader.point(x).unwrap();
            prop_assert!(a.bounds_hold(d, 1e-6), "point {x}: {} vs {d}", a.value);
            let reference = point_answer(&build.synopsis, &bound, x);
            prop_assert!((a.value - reference.value).abs() < 1e-9);
            prop_assert_eq!(a.err_abs, reference.err_abs);
        }

        // Ranges, batched; bound scales with the width.
        let queries: Vec<Query> = test_ranges()
            .into_iter()
            .map(|(l, h)| Query::RangeSum { l, h })
            .collect();
        let answers = reader.execute(&queries).unwrap();
        for (a, q) in answers.iter().zip(&queries) {
            let Query::RangeSum { l, h } = *q else { unreachable!() };
            let exact = prefix[h + 1] - prefix[l];
            prop_assert!(a.bounds_hold(exact, 1e-6), "range {l}..={h}");
            let reference = range_answer(&build.synopsis, &bound, l, h);
            prop_assert!((a.value - reference.value).abs() < 1e-6);
            prop_assert_eq!(a.err_abs, reference.err_abs);
            prop_assert_eq!(a.version, 1);
        }

        // Mid-batch swap: publish a different build, re-execute on the
        // pinned reader — bit-identical answers, still version 1.
        let build2 = dgreedy_abs(&cluster(), &data, budget / 2 + 8, &cfg).unwrap();
        store
            .publish(&build2.synopsis, ErrorBound::from_dgreedy_abs(&build2, &cfg), 2.0, 2)
            .unwrap();
        let again = reader.execute(&queries).unwrap();
        for (a, b) in answers.iter().zip(&again) {
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
            prop_assert_eq!(b.version, 1);
        }
        prop_assert_eq!(store.reader().unwrap().version(), 2);
    }

    // Satellite 4 (relative bound): DGreedyRel's measured max-rel bound
    // holds for every served point on uniform and zipf data; range
    // answers deliberately carry no relative bound.
    #[test]
    fn served_answers_within_rel_bound(
        seed in 0u64..1_000_000,
        zipf_sel in 0u8..2,
        shard_sel in 0usize..2,
    ) {
        let zipfian = zipf_sel == 1;
        let shards = [4usize, 16][shard_sel];
        let data = workload(zipfian, seed);
        let cfg = DGreedyRelConfig {
            base_leaves: BASE,
            bucket_width: 1e-9,
            reducers: 2,
            sanity: 5.0,
        };
        let build = dgreedy_rel(&cluster(), &data, 24, &cfg).unwrap();
        let bound = ErrorBound::from_dgreedy_rel(&build, &cfg);

        let store = SynopsisStore::new("proptest-rel", shards);
        store.publish(&build.synopsis, bound, 1.0, 1).unwrap();
        let reader = store.reader().unwrap();
        for (x, &d) in data.iter().enumerate() {
            let a = reader.point(x).unwrap();
            prop_assert!(a.err_rel.is_some(), "point answers carry the rel bound");
            prop_assert!(a.bounds_hold(d, 1e-6), "point {x}: {} vs {d}", a.value);
        }
        let r = reader.range_sum(3, 200).unwrap();
        prop_assert!(r.err_rel.is_none(), "rel bounds never scale to ranges");
    }
}

/// A reader pinned at version 1 returns bit-identical answers while a
/// concurrent thread keeps swapping new snapshots in — and every batch
/// a concurrent query thread executes is internally consistent (one
/// version, values matching that version's synopsis).
#[test]
fn readers_stay_pinned_under_concurrent_swaps() {
    let data = uniform(N, 1000.0, 99);
    let cfg = abs_cfg();
    let build_a = dgreedy_abs(&cluster(), &data, 24, &cfg).unwrap();
    let build_b = dgreedy_abs(&cluster(), &data, 48, &cfg).unwrap();
    assert_ne!(build_a.synopsis.entries(), build_b.synopsis.entries());
    let bound_a = ErrorBound::from_dgreedy_abs(&build_a, &cfg);
    let bound_b = ErrorBound::from_dgreedy_abs(&build_b, &cfg);

    let store = SynopsisStore::new("concurrent", 16);
    store.publish(&build_a.synopsis, bound_a, 1.0, 1).unwrap();

    let queries: Vec<Query> = (0..N)
        .map(|x| Query::Point { x })
        .chain(
            test_ranges()
                .into_iter()
                .map(|(l, h)| Query::RangeSum { l, h }),
        )
        .collect();
    let pinned = store.reader().unwrap();
    let expected_v1 = pinned.execute(&queries).unwrap();

    // Expected answers per parity: odd store versions serve build A,
    // even versions serve build B (see the publisher below).
    let probe = SynopsisStore::new("probe", 16);
    probe.publish(&build_b.synopsis, bound_b, 1.0, 1).unwrap();
    let expected_b = probe.reader().unwrap().execute(&queries).unwrap();

    const SWAPS: usize = 200;
    std::thread::scope(|s| {
        let publisher = {
            let store = store.clone();
            let (syn_a, syn_b) = (&build_a.synopsis, &build_b.synopsis);
            s.spawn(move || {
                for i in 0..SWAPS {
                    let (syn, bound) = if i % 2 == 0 {
                        (syn_b, bound_b) // versions 2, 4, ... serve B
                    } else {
                        (syn_a, bound_a) // versions 3, 5, ... serve A
                    };
                    store
                        .publish(syn, bound, 2.0 + i as f64, 2 + i as u64)
                        .unwrap();
                    std::thread::yield_now();
                }
            })
        };

        // Two query threads drain batches against whatever version their
        // reader pinned; each batch must be internally consistent.
        for t in 0..2 {
            let store = store.clone();
            let queries = &queries;
            let (expected_v1, expected_b) = (&expected_v1, &expected_b);
            s.spawn(move || {
                for _ in 0..50 {
                    let reader = store.reader().unwrap();
                    let v = reader.version();
                    let answers = reader.execute(queries).unwrap();
                    let expected = if v % 2 == 1 { expected_v1 } else { expected_b };
                    for (a, e) in answers.iter().zip(expected) {
                        assert_eq!(a.version, v, "thread {t}: torn batch");
                        assert_eq!(
                            a.value.to_bits(),
                            e.value.to_bits(),
                            "thread {t}: answer does not match version {v}'s synopsis"
                        );
                    }
                }
            });
        }
        publisher.join().unwrap();
    });

    // The long-lived pinned reader never moved off version 1.
    assert_eq!(pinned.version(), 1);
    let after = pinned.execute(&queries).unwrap();
    for (a, e) in after.iter().zip(&expected_v1) {
        assert_eq!(a.value.to_bits(), e.value.to_bits());
        assert_eq!(a.version, 1);
    }
    assert_eq!(store.version(), 1 + SWAPS as u64);
}

/// The full build→publish→serve loop: `ServeDriver` ticks publish
/// monotone store versions whose served answers carry the widened
/// guarantee and hold against the window's raw data.
#[test]
fn serve_driver_end_to_end_bounds_hold() {
    use dwmaxerr::serve::ServeDriver;

    let n = 256;
    let cluster = cluster();
    let mut driver = ServeDriver::new(n, n / 8, &abs_cfg(), 8, "e2e").unwrap();
    let feed = uniform(2 * n, 1000.0, 5);

    let r1 = driver.tick(&cluster, &feed[..n]).unwrap();
    assert_eq!(r1.store_version, 1);
    let r2 = driver.tick(&cluster, &feed[n..n + 32]).unwrap();
    assert_eq!(r2.store_version, 2);

    let reader = driver.store().reader().unwrap();
    assert_eq!(reader.version(), 2);
    let window = driver.driver().window().data().to_vec();
    let prefix = prefix_sums(&window);
    for (x, &d) in window.iter().enumerate() {
        assert!(reader.point(x).unwrap().bounds_hold(d, 1e-6), "point {x}");
    }
    for (l, h) in [(0, n - 1), (7, 40), (100, 101)] {
        let a = reader.range_sum(l, h).unwrap();
        assert!(
            a.bounds_hold(prefix[h + 1] - prefix[l], 1e-6),
            "range {l}..={h}"
        );
        assert_eq!(
            a.err_abs,
            reader.bound().err_abs.map(|e| e * (h - l + 1) as f64)
        );
    }
}
