//! Documentation cross-reference checker (offline `cargo doc`
//! link-check companion).
//!
//! `RUSTDOCFLAGS=-D warnings cargo doc` already verifies rustdoc intra-
//! doc links; this test covers the hand-written markdown the rustdoc
//! gate can't see. For `README.md`, `DESIGN.md`, `EXPERIMENTS.md`,
//! `ROADMAP.md`, and `CHANGES.md` it verifies that
//!
//! 1. every markdown link `[text](path)` to a relative path resolves to
//!    a file in the repository (external URLs and pure anchors are
//!    skipped),
//! 2. every backticked source path (`` `foo/bar.rs` `` and friends)
//!    exists, either repo-relative or under `crates/` (the docs
//!    abbreviate `crates/bench/...` as `bench/...`) — generated
//!    artifacts like `BENCH_*.json` and exported traces are exempt, and
//! 3. every `§N` reference on a line that names `DESIGN.md` points at a
//!    real `## N.`-numbered DESIGN section, so section renumbering
//!    can't silently strand the README/EXPERIMENTS cross-references.

use std::collections::BTreeSet;
use std::path::Path;

const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Generated-at-runtime artifacts the docs legitimately name before
/// they exist in a fresh checkout.
fn is_generated(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    name.starts_with("BENCH_")
        || name.ends_with(".trace.json")
        || name.ends_with(".trace.jsonl")
        || path.starts_with("target/")
        || path.starts_with("traces/")
}

fn path_resolves(path: &str) -> bool {
    let root = repo_root();
    root.join(path).exists() || root.join("crates").join(path).exists()
}

/// Extracts `(capture, rest_of_line)` pairs for a crude single-line
/// pattern: every occurrence of text between `open` and `close`.
fn between<'a>(line: &'a str, open: &str, close: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find(open) {
        rest = &rest[start + open.len()..];
        if let Some(end) = rest.find(close) {
            out.push(&rest[..end]);
            rest = &rest[end + close.len()..];
        } else {
            break;
        }
    }
    out
}

#[test]
fn markdown_links_resolve() {
    let mut broken = Vec::new();
    for doc in DOCS {
        let text = std::fs::read_to_string(repo_root().join(doc)).expect(doc);
        for (lineno, line) in text.lines().enumerate() {
            for target in between(line, "](", ")") {
                let target = target.split_whitespace().next().unwrap_or("");
                if target.is_empty()
                    || target.starts_with('#')
                    || target.contains("://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                let path = target.split('#').next().unwrap_or(target);
                if !is_generated(path) && !path_resolves(path) {
                    broken.push(format!("{doc}:{}: broken link to {path}", lineno + 1));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken markdown links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn backticked_source_paths_exist() {
    let exts = [".rs", ".md", ".toml", ".json", ".jsonl"];
    let mut broken = Vec::new();
    for doc in DOCS {
        let text = std::fs::read_to_string(repo_root().join(doc)).expect(doc);
        for (lineno, line) in text.lines().enumerate() {
            for tick in between(line, "`", "`") {
                if !exts.iter().any(|e| tick.ends_with(e))
                    || tick.contains(char::is_whitespace)
                    || tick.contains('*')
                {
                    continue;
                }
                if !is_generated(tick) && !path_resolves(tick) {
                    broken.push(format!("{doc}:{}: missing file `{tick}`", lineno + 1));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "stale file references:\n{}",
        broken.join("\n")
    );
}

#[test]
fn design_section_references_resolve() {
    let design = std::fs::read_to_string(repo_root().join("DESIGN.md")).expect("DESIGN.md");
    let sections: BTreeSet<u32> = design
        .lines()
        .filter_map(|l| l.strip_prefix("## "))
        .filter_map(|h| h.split(['.', ' ']).next().and_then(|n| n.parse().ok()))
        .collect();
    assert!(
        sections.contains(&13),
        "sanity: DESIGN.md numbering changed shape ({sections:?})"
    );

    let mut broken = Vec::new();
    for doc in DOCS {
        let text = std::fs::read_to_string(repo_root().join(doc)).expect(doc);
        for (lineno, line) in text.lines().enumerate() {
            if !line.contains("DESIGN.md") {
                continue;
            }
            for chunk in line.split('§').skip(1) {
                let digits: String = chunk.chars().take_while(char::is_ascii_digit).collect();
                let Ok(n) = digits.parse::<u32>() else {
                    continue;
                };
                if !sections.contains(&n) {
                    broken.push(format!(
                        "{doc}:{}: §{n} does not match any '## {n}.' DESIGN.md section",
                        lineno + 1
                    ));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "stale DESIGN.md section references:\n{}",
        broken.join("\n")
    );
}
