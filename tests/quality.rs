//! Cross-algorithm quality matrix: the ordering invariants that the
//! paper's evaluation rests on, checked across both dataset surrogates.

use dwmaxerr::algos::greedy_rel::greedy_rel_synopsis;
use dwmaxerr::algos::indirect_haar::indirect_haar_centralized;
use dwmaxerr::algos::min_rel_var::{min_rel_var, MrvParams};
use dwmaxerr::algos::{conventional_synopsis, greedy_abs_synopsis};
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::datagen::{nyct_like, wd_like};
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::wavelet::metrics::evaluate;
use dwmaxerr::wavelet::transform::forward;
use dwmaxerr::wavelet::Synopsis;

struct Entry {
    name: &'static str,
    synopsis: Synopsis,
}

fn matrix(data: &[f64], b: usize, delta: f64) -> Vec<Entry> {
    let w = forward(data).unwrap();
    let cluster = {
        let mut cfg = ClusterConfig::with_slots(8, 4);
        cfg.task_startup = std::time::Duration::from_micros(10);
        cfg.job_setup = std::time::Duration::from_micros(10);
        Cluster::new(cfg)
    };
    let mut out = vec![
        Entry {
            name: "conventional",
            synopsis: conventional_synopsis(&w, b).unwrap(),
        },
        Entry {
            name: "greedy_abs",
            synopsis: greedy_abs_synopsis(&w, b).unwrap().0,
        },
        Entry {
            name: "greedy_rel",
            synopsis: greedy_rel_synopsis(&w, data, b, 1.0).unwrap().0,
        },
        Entry {
            name: "indirect_haar",
            synopsis: indirect_haar_centralized(data, b, delta).unwrap().synopsis,
        },
        Entry {
            name: "min_rel_var",
            synopsis: min_rel_var(data, b.min(24), &MrvParams::new(2, 1.0).unwrap(), 5)
                .unwrap()
                .synopsis,
        },
    ];
    let d = dgreedy_abs(
        &cluster,
        data,
        b,
        &DGreedyAbsConfig {
            base_leaves: (data.len() / 16).max(2),
            bucket_width: 1e-6,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    out.push(Entry {
        name: "dgreedy_abs",
        synopsis: d.synopsis,
    });
    out
}

fn check_dataset(data: &[f64], b: usize, delta: f64) {
    let entries = matrix(data, b, delta);
    let report = |name: &str| {
        let e = entries.iter().find(|e| e.name == name).unwrap();
        evaluate(data, &e.synopsis, 1.0)
    };

    // Budgets hold everywhere (MinRelVar's budget is in expectation, so
    // give it slack for coin-flip variance).
    for e in &entries {
        let slack = if e.name == "min_rel_var" {
            b / 2 + 8
        } else {
            0
        };
        assert!(
            e.synopsis.size() <= b + slack,
            "{} exceeded budget: {} > {b}",
            e.name,
            e.synopsis.size()
        );
    }

    let conv = report("conventional");
    let gabs = report("greedy_abs");
    let grel = report("greedy_rel");
    let dp = report("indirect_haar");
    let dabs = report("dgreedy_abs");

    // L2-optimality: nothing beats the conventional synopsis on L2.
    for e in &entries {
        if e.name == "min_rel_var" {
            continue; // probabilistic sizes differ
        }
        let l2 = evaluate(data, &e.synopsis, 1.0).l2;
        assert!(
            conv.l2 <= l2 + 1e-9,
            "conventional L2 {} beaten by {} with {}",
            conv.l2,
            e.name,
            l2
        );
    }

    // Max-error specialists beat the conventional synopsis on max_abs.
    assert!(
        gabs.max_abs < conv.max_abs,
        "GreedyAbs {} !< conv {}",
        gabs.max_abs,
        conv.max_abs
    );
    assert!(
        dp.max_abs < conv.max_abs,
        "DP {} !< conv {}",
        dp.max_abs,
        conv.max_abs
    );
    assert!(
        dabs.max_abs < conv.max_abs,
        "DGreedyAbs {} !< conv {}",
        dabs.max_abs,
        conv.max_abs
    );

    // The DP is (quantization-)optimal for max_abs: it must not lose to
    // the greedy heuristic by more than a quantum.
    assert!(
        dp.max_abs <= gabs.max_abs + delta + 1e-9,
        "DP {} lost to greedy {}",
        dp.max_abs,
        gabs.max_abs
    );

    // GreedyRel wins (or ties) on its own metric against GreedyAbs.
    assert!(
        grel.max_rel <= gabs.max_rel + 1e-9,
        "GreedyRel {} !<= GreedyAbs {} on max_rel",
        grel.max_rel,
        gabs.max_rel
    );

    // Distributed greedy ≈ centralized greedy (the paper's headline).
    assert!(
        dabs.max_abs <= gabs.max_abs * 1.2 + 1.0,
        "DGreedyAbs {} too far above GreedyAbs {}",
        dabs.max_abs,
        gabs.max_abs
    );
}

#[test]
fn quality_matrix_nyct_like() {
    // δ proportionate to NYCT's error scale (the paper uses 50).
    let n = 1 << 11;
    check_dataset(&nyct_like(n, 0.0, 77), n / 8, 50.0);
}

#[test]
fn quality_matrix_wd_like() {
    let n = 1 << 11;
    check_dataset(&wd_like(n, 1e-4, 78), n / 8, 2.0);
}

#[test]
fn quality_matrix_tight_budget() {
    let n = 1 << 10;
    check_dataset(&nyct_like(n, 0.0, 79), n / 32, 50.0);
}
