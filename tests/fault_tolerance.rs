//! Fault-tolerance acceptance tests: the paper's distributed algorithms
//! must produce bit-identical synopses on a cluster that loses task
//! attempts, hosts stragglers, or loses whole *nodes* (taking completed
//! map outputs with them) — recovery may only cost (simulated) time,
//! never accuracy.
//!
//! The suite honours `DWM_SPILL_BACKEND` (`memory`/`disk`), so a CI leg
//! can replay every scenario against the on-disk spill store; the
//! node-kill goldens additionally iterate both backends explicitly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::core::dmin_haar_space::DmhsConfig;
use dwmaxerr::core::CoreError;
use dwmaxerr::datagen::synthetic::uniform;
use dwmaxerr::runtime::trace::{self, TraceEventKind};
use dwmaxerr::runtime::{
    Cluster, ClusterConfig, FaultPlan, JobBuilder, MapContext, ReduceContext, RuntimeError,
    SpillBackend, TaskPhase,
};

const N: usize = 1 << 13;
const BASE_LEAVES: usize = 1 << 10;

/// A small cluster whose map durations are dominated by a *deterministic*
/// simulated HDFS read (8 KiB splits at 64 KiB/s = 125 ms/task), so
/// makespan comparisons are immune to host-timing noise. Spill backend
/// comes from `DWM_SPILL_BACKEND` (default memory).
fn cluster(plan: Option<FaultPlan>) -> Cluster {
    cluster_on(SpillBackend::from_env(), plan)
}

/// Same cluster shape with an explicit spill backend.
fn cluster_on(backend: SpillBackend, plan: Option<FaultPlan>) -> Cluster {
    let mut cfg = ClusterConfig::with_slots(4, 2);
    cfg.task_startup = Duration::from_millis(1);
    cfg.job_setup = Duration::from_millis(1);
    cfg.hdfs_bytes_per_sec = 64.0 * 1024.0;
    cfg.spill_backend = backend;
    cfg.fault_plan = plan;
    Cluster::new(cfg)
}

/// ≥10% attempt failures plus two map stragglers, as the acceptance
/// criteria demand.
fn hostile_plan() -> FaultPlan {
    FaultPlan::seeded(11)
        .with_failure_prob(0.12)
        .with_straggler(TaskPhase::Map, 0, 6.0)
        .with_straggler(TaskPhase::Map, 3, 4.0)
}

#[test]
fn dgreedy_abs_is_bit_identical_under_faults() {
    let data = uniform(N, 1_000.0, 77);
    let b = N / 8;
    let cfg = DGreedyAbsConfig {
        base_leaves: BASE_LEAVES,
        bucket_width: 1.0,
        reducers: 4,
        max_candidates: None,
    };

    let clean = dgreedy_abs(&cluster(None), &data, b, &cfg).expect("fault-free run");
    let faulty =
        dgreedy_abs(&cluster(Some(hostile_plan())), &data, b, &cfg).expect("recovers from faults");

    // Bit-identical synopsis: recovery must never change the answer.
    assert_eq!(
        clean.synopsis.reconstruct_all(),
        faulty.synopsis.reconstruct_all()
    );

    let stats = faulty.metrics.total_attempt_stats();
    assert!(stats.failed > 0, "plan injected no failures: {stats:?}");
    assert!(stats.retried > 0, "no retries recorded: {stats:?}");
    assert!(
        stats.speculative > 0,
        "stragglers spawned no backups: {stats:?}"
    );
    assert!(stats.wasted_secs > 0.0);

    // Recovery is paid in simulated time, serialized after each failure.
    let clean_secs = clean.metrics.total_simulated().secs();
    let faulty_secs = faulty.metrics.total_simulated().secs();
    assert!(
        faulty_secs > clean_secs,
        "faulty {faulty_secs} not slower than clean {clean_secs}"
    );
}

#[test]
fn dindirect_haar_is_bit_identical_under_faults() {
    let data = uniform(N, 1_000.0, 78);
    let b = N / 8;
    let cfg = DIndirectHaarConfig {
        delta: 50.0,
        probe: DmhsConfig {
            base_leaves: BASE_LEAVES,
            fan_in: 16,
        },
    };

    let clean = dindirect_haar(&cluster(None), &data, b, &cfg).expect("fault-free run");
    let plan = FaultPlan::seeded(5)
        .with_failure_prob(0.10)
        .with_straggler(TaskPhase::Map, 1, 5.0)
        .with_straggler(TaskPhase::Map, 2, 4.0);
    let faulty = dindirect_haar(&cluster(Some(plan)), &data, b, &cfg).expect("recovers");

    assert_eq!(clean.error, faulty.error, "bitwise-equal achieved error");
    assert_eq!(
        clean.synopsis.reconstruct_all(),
        faulty.synopsis.reconstruct_all()
    );
    assert_eq!(clean.probes, faulty.probes, "same binary-search trajectory");

    let stats = faulty.metrics.total_attempt_stats();
    assert!(stats.failed > 0 && stats.retried > 0, "{stats:?}");
    assert!(stats.speculative > 0, "{stats:?}");
    assert!(faulty.metrics.total_simulated() > clean.metrics.total_simulated());
}

/// The mid-job node kill the PR's acceptance criteria demand: node 0 dies
/// *after* every map attempt has completed (sim time 1000 s is far past
/// any map end on this cluster), so nothing is cut mid-flight but every
/// map output node 0 hosted is gone when reducers fetch. The run must be
/// byte-identical to the fault-free one, with the recovery visible in the
/// metrics and as `map_reexecuted` trace events — on both spill backends.
#[test]
fn dgreedy_abs_survives_node_kill_after_maps_on_both_backends() {
    let data = uniform(N, 1_000.0, 77);
    let b = N / 8;
    let cfg = DGreedyAbsConfig {
        base_leaves: BASE_LEAVES,
        bucket_width: 1.0,
        reducers: 4,
        max_candidates: None,
    };
    let clean = dgreedy_abs(&cluster(None), &data, b, &cfg).expect("fault-free run");
    for backend in [SpillBackend::Memory, SpillBackend::Disk] {
        let plan = FaultPlan::seeded(0).with_node_failure(0, 1000.0);
        let killed = cluster_on(backend, Some(plan));
        let faulty = dgreedy_abs(&killed, &data, b, &cfg).expect("recovers from the node kill");
        assert_eq!(
            clean.synopsis.reconstruct_all(),
            faulty.synopsis.reconstruct_all(),
            "{backend:?}: node-kill recovery changed the synopsis"
        );
        let rec = faulty.metrics.total_recovery_stats();
        assert!(rec.nodes_failed > 0, "{backend:?}: {rec:?}");
        assert!(rec.maps_reexecuted > 0, "{backend:?}: {rec:?}");
        assert!(rec.fetch_retries > 0, "{backend:?}: {rec:?}");
        // Fetch backoff plus re-executed maps are paid in simulated time.
        assert!(faulty.metrics.total_simulated() > clean.metrics.total_simulated());
        let events = killed.trace_events();
        trace::validate(&events).expect("node-kill trace validates");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::NodeDown { node: 0, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::FetchFailed { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::MapReexecuted { .. })));
    }
}

/// Same scenario through the conventional [`JobBuilder`] facade, with a
/// corrupt stored run on top: the checksum footer flags the corruption,
/// the lost-node and corrupt outputs are both re-executed, and the output
/// stays byte-identical on both spill backends.
#[test]
fn conventional_job_survives_node_kill_and_corruption_on_both_backends() {
    let splits: Vec<Vec<u64>> = (0..8)
        .map(|s| (0..64).map(|i| (s * 31 + i * 7) % 40).collect())
        .collect();
    let run = |cluster: &Cluster| {
        JobBuilder::new("wordcount")
            .map(|split: &Vec<u64>, ctx: &mut MapContext<u64, u64>| {
                for &x in split {
                    ctx.emit(x, 1);
                }
            })
            .reducers(2)
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, u64>| ctx.emit(*k, vals.sum()))
            .run(cluster, &splits)
    };
    let clean = run(&cluster(None)).expect("fault-free run");
    for backend in [SpillBackend::Memory, SpillBackend::Disk] {
        let plan = FaultPlan::seeded(3)
            .with_node_failure(1, 1000.0)
            .with_corrupt_run(2);
        let killed = cluster_on(backend, Some(plan));
        let faulty = run(&killed).expect("recovers from node kill + corruption");
        assert_eq!(clean.pairs, faulty.pairs, "{backend:?}");
        assert!(faulty.metrics.nodes_failed() > 0, "{backend:?}");
        assert!(faulty.metrics.maps_reexecuted() > 0, "{backend:?}");
        assert!(faulty.metrics.corrupt_runs() > 0, "{backend:?}");
        let events = killed.trace_events();
        trace::validate(&events).expect("trace validates");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::MapReexecuted { task: 2, .. })));
    }
}

#[test]
fn exhausted_attempts_surface_as_typed_error() {
    let data = uniform(N, 1_000.0, 79);
    let cfg = DGreedyAbsConfig {
        base_leaves: BASE_LEAVES,
        bucket_width: 1.0,
        reducers: 2,
        max_candidates: None,
    };
    // Map task 0 fails all four default attempts in every job.
    let plan = FaultPlan::seeded(0).with_targeted(TaskPhase::Map, 0, vec![1, 2, 3, 4]);
    let err = dgreedy_abs(&cluster(Some(plan)), &data, N / 8, &cfg).unwrap_err();
    match err {
        CoreError::Runtime(RuntimeError::TaskFailed {
            phase,
            task,
            attempts,
            ..
        }) => {
            assert_eq!(phase, TaskPhase::Map);
            assert_eq!(task, 0);
            assert_eq!(attempts, 4);
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}

#[test]
fn panicking_map_function_is_isolated_and_typed() {
    // Through the public facade: a panicking user function must be caught,
    // retried max_attempts times, and reported as a typed error — never an
    // engine abort.
    let mut cfg = ClusterConfig::with_slots(2, 1);
    cfg.max_attempts = 3;
    let cluster = Cluster::new(cfg);
    let calls = AtomicUsize::new(0);
    let result = JobBuilder::new("panicky")
        .map(|_s: &u8, _ctx: &mut MapContext<u8, u8>| {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("user bug");
        })
        .reduce(|_k, _v, _c: &mut ReduceContext<u8, u8>| {})
        .run(&cluster, &[0u8]);
    assert_eq!(calls.load(Ordering::SeqCst), 3, "retried per max_attempts");
    match result {
        Err(RuntimeError::TaskFailed {
            attempts, reason, ..
        }) => {
            assert_eq!(attempts, 3);
            assert!(reason.contains("user bug"), "{reason}");
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}
