//! Fault-tolerance acceptance tests: the paper's distributed algorithms
//! must produce bit-identical synopses on a cluster that loses task
//! attempts and hosts stragglers — recovery may only cost (simulated)
//! time, never accuracy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::core::dmin_haar_space::DmhsConfig;
use dwmaxerr::core::CoreError;
use dwmaxerr::datagen::synthetic::uniform;
use dwmaxerr::runtime::{
    Cluster, ClusterConfig, FaultPlan, JobBuilder, MapContext, ReduceContext, RuntimeError,
    TaskPhase,
};

const N: usize = 1 << 13;
const BASE_LEAVES: usize = 1 << 10;

/// A small cluster whose map durations are dominated by a *deterministic*
/// simulated HDFS read (8 KiB splits at 64 KiB/s = 125 ms/task), so
/// makespan comparisons are immune to host-timing noise.
fn cluster(plan: Option<FaultPlan>) -> Cluster {
    let mut cfg = ClusterConfig::with_slots(4, 2);
    cfg.task_startup = Duration::from_millis(1);
    cfg.job_setup = Duration::from_millis(1);
    cfg.hdfs_bytes_per_sec = 64.0 * 1024.0;
    cfg.fault_plan = plan;
    Cluster::new(cfg)
}

/// ≥10% attempt failures plus two map stragglers, as the acceptance
/// criteria demand.
fn hostile_plan() -> FaultPlan {
    FaultPlan::seeded(11)
        .with_failure_prob(0.12)
        .with_straggler(TaskPhase::Map, 0, 6.0)
        .with_straggler(TaskPhase::Map, 3, 4.0)
}

#[test]
fn dgreedy_abs_is_bit_identical_under_faults() {
    let data = uniform(N, 1_000.0, 77);
    let b = N / 8;
    let cfg = DGreedyAbsConfig {
        base_leaves: BASE_LEAVES,
        bucket_width: 1.0,
        reducers: 4,
        max_candidates: None,
    };

    let clean = dgreedy_abs(&cluster(None), &data, b, &cfg).expect("fault-free run");
    let faulty =
        dgreedy_abs(&cluster(Some(hostile_plan())), &data, b, &cfg).expect("recovers from faults");

    // Bit-identical synopsis: recovery must never change the answer.
    assert_eq!(
        clean.synopsis.reconstruct_all(),
        faulty.synopsis.reconstruct_all()
    );

    let stats = faulty.metrics.total_attempt_stats();
    assert!(stats.failed > 0, "plan injected no failures: {stats:?}");
    assert!(stats.retried > 0, "no retries recorded: {stats:?}");
    assert!(
        stats.speculative > 0,
        "stragglers spawned no backups: {stats:?}"
    );
    assert!(stats.wasted_secs > 0.0);

    // Recovery is paid in simulated time, serialized after each failure.
    let clean_secs = clean.metrics.total_simulated().secs();
    let faulty_secs = faulty.metrics.total_simulated().secs();
    assert!(
        faulty_secs > clean_secs,
        "faulty {faulty_secs} not slower than clean {clean_secs}"
    );
}

#[test]
fn dindirect_haar_is_bit_identical_under_faults() {
    let data = uniform(N, 1_000.0, 78);
    let b = N / 8;
    let cfg = DIndirectHaarConfig {
        delta: 50.0,
        probe: DmhsConfig {
            base_leaves: BASE_LEAVES,
            fan_in: 16,
        },
    };

    let clean = dindirect_haar(&cluster(None), &data, b, &cfg).expect("fault-free run");
    let plan = FaultPlan::seeded(5)
        .with_failure_prob(0.10)
        .with_straggler(TaskPhase::Map, 1, 5.0)
        .with_straggler(TaskPhase::Map, 2, 4.0);
    let faulty = dindirect_haar(&cluster(Some(plan)), &data, b, &cfg).expect("recovers");

    assert_eq!(clean.error, faulty.error, "bitwise-equal achieved error");
    assert_eq!(
        clean.synopsis.reconstruct_all(),
        faulty.synopsis.reconstruct_all()
    );
    assert_eq!(clean.probes, faulty.probes, "same binary-search trajectory");

    let stats = faulty.metrics.total_attempt_stats();
    assert!(stats.failed > 0 && stats.retried > 0, "{stats:?}");
    assert!(stats.speculative > 0, "{stats:?}");
    assert!(faulty.metrics.total_simulated() > clean.metrics.total_simulated());
}

#[test]
fn exhausted_attempts_surface_as_typed_error() {
    let data = uniform(N, 1_000.0, 79);
    let cfg = DGreedyAbsConfig {
        base_leaves: BASE_LEAVES,
        bucket_width: 1.0,
        reducers: 2,
        max_candidates: None,
    };
    // Map task 0 fails all four default attempts in every job.
    let plan = FaultPlan::seeded(0).with_targeted(TaskPhase::Map, 0, vec![1, 2, 3, 4]);
    let err = dgreedy_abs(&cluster(Some(plan)), &data, N / 8, &cfg).unwrap_err();
    match err {
        CoreError::Runtime(RuntimeError::TaskFailed {
            phase,
            task,
            attempts,
            ..
        }) => {
            assert_eq!(phase, TaskPhase::Map);
            assert_eq!(task, 0);
            assert_eq!(attempts, 4);
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}

#[test]
fn panicking_map_function_is_isolated_and_typed() {
    // Through the public facade: a panicking user function must be caught,
    // retried max_attempts times, and reported as a typed error — never an
    // engine abort.
    let mut cfg = ClusterConfig::with_slots(2, 1);
    cfg.max_attempts = 3;
    let cluster = Cluster::new(cfg);
    let calls = AtomicUsize::new(0);
    let result = JobBuilder::new("panicky")
        .map(|_s: &u8, _ctx: &mut MapContext<u8, u8>| {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("user bug");
        })
        .reduce(|_k, _v, _c: &mut ReduceContext<u8, u8>| {})
        .run(&cluster, &[0u8]);
    assert_eq!(calls.load(Ordering::SeqCst), 3, "retried per max_attempts");
    match result {
        Err(RuntimeError::TaskFailed {
            attempts, reason, ..
        }) => {
            assert_eq!(attempts, 3);
            assert!(reason.contains("user bug"), "{reason}");
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}
