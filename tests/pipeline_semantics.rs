//! Cross-crate refactor guard: every distributed algorithm, now driven by
//! `runtime::pipeline`, must produce **bit-identical** synopses to the
//! pre-refactor job-chaining implementations.
//!
//! The golden digests below were captured from the seed implementation
//! (driver-side `Job::run` chaining with hand-summed metrics) on a fixed
//! workload, before the Pipeline port. Each test re-runs the same workload
//! through the pipelines and checks:
//!
//! * the FNV-1a digest over the synopsis entry bytes is unchanged,
//! * the executed job-name sequence is unchanged (same stages, same order),
//! * both still hold under an injected [`FaultPlan`] (deterministic
//!   recovery), and
//! * [`DriverMetrics::per_stage`] partitions the job ledger exactly.

use dwmaxerr::algos::min_haar_space::MhsParams;
use dwmaxerr::algos::min_rel_var::MrvParams;
use dwmaxerr::core::conventional::{con, hwtopk, send_coef, send_coef_combined, send_v};
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dgreedy_rel::{dgreedy_rel, DGreedyRelConfig};
use dwmaxerr::core::dhaar_plus::{dhaar_plus, DhpConfig};
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::core::dmin_haar_space::{dmin_haar_space, DmhsConfig};
use dwmaxerr::core::dmin_rel_var::{dmin_rel_var, DmrvConfig};
use dwmaxerr::datagen::synthetic::uniform;
use dwmaxerr::runtime::{Cluster, ClusterConfig, DriverMetrics, FaultPlan, TaskPhase};
use dwmaxerr::wavelet::Synopsis;

/// Golden `(algorithm, synopsis digest, executed job-name sequence)` rows
/// captured from the seed implementation. `dindirect_haar`'s sequence is
/// assembled by [`dih_names`] (three bound jobs plus eight probe chains).
const GOLDENS: &[(&str, u64, &str)] = &[
    (
        "dgreedy_abs",
        0x9cd78121061a16d6,
        "dgreedyabs-averages,dgreedyabs-errhist,dgreedyabs-synopsis",
    ),
    (
        "dgreedy_rel",
        0x96152d5454b8b41c,
        "dgreedyrel-averages,dgreedyrel-errhist,dgreedyrel-synopsis,eval-max-rel",
    ),
    ("dmin_haar_space", 0x5522dada1daf9f24, MHS_CHAIN),
    ("dindirect_haar", 0x22a4c439ab01b27b, ""),
    (
        "dmin_rel_var",
        0x0ee9e5028e6dbe47,
        "dmrv-layer0,dmrv-layer-up,dmrv-layer-up,dmrv-extract,dmrv-extract,dmrv-extract-base",
    ),
    (
        "dhaar_plus",
        0x0f4542fcf6d6a4b3,
        "dhp-layer0,dhp-layer-up,dhp-layer-up,dhp-extract,dhp-extract,dhp-extract-base",
    ),
    ("con", 0x07147c732b1c089e, "con"),
    ("send_v", 0x07147c732b1c089e, "send-v"),
    ("send_coef", 0x748f5e00ab4dbc30, "send-coef"),
    (
        "send_coef_combined",
        0x328506b2097b1244,
        "send-coef+combiner",
    ),
    (
        "hwtopk",
        0x328506b2097b1244,
        "hwtopk-round1,hwtopk-round2,hwtopk-round3",
    ),
];

/// One full DMHaarSpace chain on the golden workload (two merge layers,
/// two extract layers) followed by the driver's evaluation job.
const MHS_CHAIN: &str =
    "dmhs-layer0,dmhs-layer-up,dmhs-layer-up,dmhs-extract,dmhs-extract,dmhs-extract-base,\
     eval-max-abs";

/// DIndirectHaar's golden job sequence: the lower-bound job, CON plus its
/// evaluation for the upper bound, then seven binary-search probes, each a
/// full DMHaarSpace chain.
fn dih_names() -> String {
    let mut names = vec!["dih-lower-bound", "con", "eval-max-abs"];
    names.extend(std::iter::repeat_n(MHS_CHAIN, 7));
    names.join(",")
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn syn_digest(s: &Synopsis) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(i, v) in s.entries() {
        fnv1a(&mut h, &i.to_le_bytes());
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

fn hp_digest(s: &dwmaxerr::algos::haar_plus::HaarPlusSynopsis) -> u64 {
    use dwmaxerr::algos::haar_plus::Role;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(i, role, v) in s.entries() {
        let r: u8 = match role {
            Role::Head => 0,
            Role::LeftSupp => 1,
            Role::RightSupp => 2,
            Role::Top => 3,
        };
        fnv1a(&mut h, &i.to_le_bytes());
        fnv1a(&mut h, &[r]);
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

fn quiet_cluster(plan: Option<FaultPlan>) -> Cluster {
    let mut cfg = ClusterConfig::with_slots(8, 4);
    cfg.task_startup = std::time::Duration::from_micros(10);
    cfg.job_setup = std::time::Duration::from_micros(10);
    cfg.fault_plan = plan;
    Cluster::new(cfg)
}

/// The fault plan the goldens were also captured under: the first attempt
/// of map task 0 and reduce task 0 of every job fails and is retried.
fn golden_fault_plan() -> FaultPlan {
    FaultPlan::seeded(3)
        .with_targeted(TaskPhase::Map, 0, vec![1])
        .with_targeted(TaskPhase::Reduce, 0, vec![1])
}

fn job_names(m: &DriverMetrics) -> String {
    m.jobs
        .iter()
        .map(|j| j.name.as_str())
        .collect::<Vec<_>>()
        .join(",")
}

/// Runs all eleven algorithms on the golden workload, returning
/// `(name, digest, job-name sequence, ledger)` per algorithm.
fn run_all(plan: Option<FaultPlan>) -> Vec<(&'static str, u64, String, DriverMetrics)> {
    let n = 256usize;
    let b = 32usize;
    let data = uniform(n, 100.0, 42);
    let mut out = Vec::new();

    let c = quiet_cluster(plan.clone());
    let r = dgreedy_abs(
        &c,
        &data,
        b,
        &DGreedyAbsConfig {
            base_leaves: 32,
            bucket_width: 0.25,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    let names = job_names(&r.metrics);
    out.push(("dgreedy_abs", syn_digest(&r.synopsis), names, r.metrics));

    let c = quiet_cluster(plan.clone());
    let r = dgreedy_rel(
        &c,
        &data,
        b,
        &DGreedyRelConfig {
            base_leaves: 32,
            bucket_width: 0.05,
            reducers: 2,
            sanity: 1.0,
        },
    )
    .unwrap();
    let names = job_names(&r.metrics);
    out.push(("dgreedy_rel", syn_digest(&r.synopsis), names, r.metrics));

    let c = quiet_cluster(plan.clone());
    let r = dmin_haar_space(
        &c,
        &data,
        &MhsParams::new(50.0, 1.0).unwrap(),
        &DmhsConfig {
            base_leaves: 32,
            fan_in: 4,
        },
    )
    .unwrap();
    let names = job_names(&r.metrics);
    out.push(("dmin_haar_space", syn_digest(&r.synopsis), names, r.metrics));

    let c = quiet_cluster(plan.clone());
    let r = dindirect_haar(
        &c,
        &data,
        b,
        &DIndirectHaarConfig {
            delta: 1.0,
            probe: DmhsConfig {
                base_leaves: 32,
                fan_in: 4,
            },
        },
    )
    .unwrap();
    let names = job_names(&r.metrics);
    out.push(("dindirect_haar", syn_digest(&r.synopsis), names, r.metrics));

    let c = quiet_cluster(plan.clone());
    let r = dmin_rel_var(
        &c,
        &data,
        16,
        &DmrvConfig {
            base_leaves: 32,
            fan_in: 4,
            params: MrvParams::new(2, 1.0).unwrap(),
            seed: 7,
        },
    )
    .unwrap();
    let names = job_names(&r.metrics);
    out.push(("dmin_rel_var", syn_digest(&r.synopsis), names, r.metrics));

    let c = quiet_cluster(plan.clone());
    let r = dhaar_plus(
        &c,
        &data,
        &MhsParams::new(50.0, 1.0).unwrap(),
        &DhpConfig {
            base_leaves: 32,
            fan_in: 4,
        },
    )
    .unwrap();
    let names = job_names(&r.metrics);
    out.push(("dhaar_plus", hp_digest(&r.synopsis), names, r.metrics));

    let c = quiet_cluster(plan.clone());
    let (s, m) = con(&c, &data, b, 32).unwrap();
    let names = job_names(&m);
    out.push(("con", syn_digest(&s), names, m));

    let c = quiet_cluster(plan.clone());
    let (s, m) = send_v(&c, &data, b, 4).unwrap();
    let names = job_names(&m);
    out.push(("send_v", syn_digest(&s), names, m));

    let c = quiet_cluster(plan.clone());
    let (s, m) = send_coef(&c, &data, b, 4).unwrap();
    let names = job_names(&m);
    out.push(("send_coef", syn_digest(&s), names, m));

    let c = quiet_cluster(plan.clone());
    let (s, m) = send_coef_combined(&c, &data, b, 4).unwrap();
    let names = job_names(&m);
    out.push(("send_coef_combined", syn_digest(&s), names, m));

    let c = quiet_cluster(plan);
    let r = hwtopk(&c, &data, b, 4).unwrap();
    let names = job_names(&r.metrics);
    out.push(("hwtopk", syn_digest(&r.synopsis), names, r.metrics));

    out
}

fn assert_matches_goldens(results: &[(&'static str, u64, String, DriverMetrics)], tag: &str) {
    assert_eq!(results.len(), GOLDENS.len());
    let dih = dih_names();
    for ((name, digest, names, _), (g_name, g_digest, g_names)) in results.iter().zip(GOLDENS) {
        let expected_names = if *g_name == "dindirect_haar" {
            dih.as_str()
        } else {
            g_names
        };
        assert_eq!(name, g_name, "[{tag}] algorithm order drifted");
        assert_eq!(
            digest, g_digest,
            "[{tag}] {name}: synopsis no longer bit-identical to the seed"
        );
        assert_eq!(
            names, expected_names,
            "[{tag}] {name}: executed job sequence drifted from the seed"
        );
    }
}

#[test]
fn pipelines_reproduce_seed_synopses_bit_identically() {
    assert_matches_goldens(&run_all(None), "clean");
}

#[test]
fn pipelines_reproduce_seed_synopses_under_injected_faults() {
    let results = run_all(Some(golden_fault_plan()));
    assert_matches_goldens(&results, "faulted");
    // The plan must actually have been exercised: every algorithm's ledger
    // records failed first attempts and their retries.
    for (name, _, _, metrics) in &results {
        let stats = metrics.total_attempt_stats();
        assert!(stats.failed > 0, "{name}: fault plan injected no failures");
        assert!(stats.retried > 0, "{name}: no retries recorded");
    }
}

#[test]
fn per_stage_rows_partition_each_ledger() {
    for (name, _, _, metrics) in run_all(Some(golden_fault_plan())) {
        let stages = metrics.per_stage();
        let runs: usize = stages.iter().map(|s| s.runs).sum();
        assert_eq!(runs, metrics.job_count(), "{name}: stage runs != job count");

        let sim: f64 = stages.iter().map(|s| s.simulated.secs()).sum();
        let total_sim = metrics.total_simulated().secs();
        assert!(
            (sim - total_sim).abs() <= 1e-9 * total_sim.max(1.0),
            "{name}: stage sim {sim} != total {total_sim}"
        );

        let shuffle: u64 = stages.iter().map(|s| s.shuffle_bytes).sum();
        assert_eq!(
            shuffle,
            metrics.total_shuffle_bytes(),
            "{name}: stage shuffle bytes don't sum to the total"
        );

        let failed: u64 = stages.iter().map(|s| s.attempt_stats.failed).sum();
        let retried: u64 = stages.iter().map(|s| s.attempt_stats.retried).sum();
        let totals = metrics.total_attempt_stats();
        assert_eq!(failed, totals.failed, "{name}: stage failed-attempt sum");
        assert_eq!(retried, totals.retried, "{name}: stage retry sum");

        // Stage names are unique (grouping actually grouped).
        let mut names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), stages.len(), "{name}: duplicate stage rows");
    }
}
