//! End-to-end integration tests across crates, driven through the
//! `dwmaxerr` facade exactly as a downstream user would.

use dwmaxerr::algos::greedy_abs_synopsis;
use dwmaxerr::algos::indirect_haar::indirect_haar_centralized;
use dwmaxerr::core::conventional::{con, hwtopk, send_coef, send_v};
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dgreedy_rel::{dgreedy_rel, DGreedyRelConfig};
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::core::dmin_haar_space::DmhsConfig;
use dwmaxerr::datagen::{nyct_like, wd_like};
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::wavelet::metrics::{evaluate, max_abs};
use dwmaxerr::wavelet::transform::forward;

fn cluster() -> Cluster {
    let mut cfg = ClusterConfig::with_slots(8, 4);
    cfg.task_startup = std::time::Duration::from_micros(50);
    cfg.job_setup = std::time::Duration::from_micros(50);
    Cluster::new(cfg)
}

#[test]
fn nyct_pipeline_quality_ordering() {
    // The Figure-8 quality relation at laptop scale: both max-error
    // algorithms beat the conventional synopsis on max_abs, and
    // DGreedyAbs matches centralized GreedyAbs.
    let n = 1 << 12;
    let b = n / 8;
    let data = nyct_like(n, 0.0, 3);
    let c = cluster();

    let d = dgreedy_abs(
        &c,
        &data,
        b,
        &DGreedyAbsConfig {
            base_leaves: 1 << 9,
            bucket_width: 0.25,
            reducers: 4,
            max_candidates: None,
        },
    )
    .unwrap();
    let d_err = max_abs(&data, &d.synopsis.reconstruct_all());

    let (g_syn, g_err) = greedy_abs_synopsis(&forward(&data).unwrap(), b).unwrap();
    let g_actual = max_abs(&data, &g_syn.reconstruct_all());
    assert!((g_err - g_actual).abs() < 1e-9);

    let (conv, _) = con(&c, &data, b, 1 << 9).unwrap();
    let conv_err = max_abs(&data, &conv.reconstruct_all());

    assert!(
        d_err < conv_err,
        "DGreedyAbs {d_err} !< conventional {conv_err}"
    );
    assert!(
        g_actual < conv_err,
        "GreedyAbs {g_actual} !< conventional {conv_err}"
    );
    // Paper: "DGreedyAbs ... achieves the same maximum absolute error with
    // its centralized counterpart" — allow a bucket of slack.
    assert!(
        d_err <= g_actual * 1.25 + 1.0,
        "DGreedyAbs {d_err} too far from GreedyAbs {g_actual}"
    );
}

#[test]
fn wd_dp_beats_greedy_and_respects_budget() {
    let n = 1 << 11;
    let b = n / 8;
    let data = wd_like(n, 1e-4, 5);
    let c = cluster();
    let cfg = DIndirectHaarConfig {
        delta: 1.0,
        probe: DmhsConfig {
            base_leaves: 1 << 8,
            fan_in: 4,
        },
    };
    let dp = dindirect_haar(&c, &data, b, &cfg).unwrap();
    assert!(dp.synopsis.size() <= b);
    let (_, g_err) = greedy_abs_synopsis(&forward(&data).unwrap(), b).unwrap();
    // The DP search is optimal over its grid: it must not lose to the
    // greedy heuristic by more than quantization slack.
    assert!(
        dp.error <= g_err + 2.0 + 1e-9,
        "DIndirectHaar {} vs GreedyAbs {g_err}",
        dp.error
    );
    // And it matches its centralized twin.
    let central = indirect_haar_centralized(&data, b, 1.0).unwrap();
    assert!(
        (dp.error - central.error).abs() <= 2.0 + 1e-9,
        "distributed {} vs centralized {}",
        dp.error,
        central.error
    );
}

#[test]
fn conventional_family_identical_on_real_like_data() {
    let n = 1 << 11;
    let b = 64;
    let data = wd_like(n, 1e-4, 9);
    let c = cluster();
    let (a, _) = con(&c, &data, b, 1 << 8).unwrap();
    let (v, _) = send_v(&c, &data, b, 5).unwrap();
    let (s, _) = send_coef(&c, &data, b, 5).unwrap();
    let h = hwtopk(&c, &data, b, 5).unwrap();
    // Index sets must agree exactly; values up to FP aggregation noise.
    let idx = |syn: &dwmaxerr::wavelet::Synopsis| {
        syn.entries().iter().map(|&(i, _)| i).collect::<Vec<_>>()
    };
    assert_eq!(idx(&a), idx(&v));
    assert_eq!(idx(&a), idx(&s));
    assert_eq!(idx(&a), idx(&h.synopsis));
    for (x, y) in a.entries().iter().zip(s.entries()) {
        assert!((x.1 - y.1).abs() < 1e-6);
    }
}

#[test]
fn dgreedy_rel_protects_relative_error_on_mixed_magnitudes() {
    let n = 1 << 10;
    let b = n / 4;
    // Sensor-like small values with occasional large spikes.
    let data: Vec<f64> = (0..n)
        .map(|i| {
            if i % 37 == 0 {
                900.0
            } else {
                10.0 + (i as f64 * 0.21).sin() * 3.0
            }
        })
        .collect();
    let c = cluster();
    let rel = dgreedy_rel(
        &c,
        &data,
        b,
        &DGreedyRelConfig {
            base_leaves: 1 << 7,
            bucket_width: 1e-6,
            reducers: 2,
            sanity: 1.0,
        },
    )
    .unwrap();
    let abs = dgreedy_abs(
        &c,
        &data,
        b,
        &DGreedyAbsConfig {
            base_leaves: 1 << 7,
            bucket_width: 1e-6,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    let rel_of = |syn: &dwmaxerr::wavelet::Synopsis| evaluate(&data, syn, 1.0).max_rel;
    assert!(
        rel.error <= rel_of(&abs.synopsis) + 1e-9,
        "DGreedyRel {} should beat DGreedyAbs {} on max_rel",
        rel.error,
        rel_of(&abs.synopsis)
    );
}

#[test]
fn error_guarantees_hold_under_corruption() {
    // Corrupt NYCT slices (near-u32::MAX records) must not break any
    // invariant: budgets hold, tracked errors are exact.
    let n = 1 << 11;
    let b = n / 8;
    let data = nyct_like(n, 2e-3, 21);
    assert!(data.iter().any(|&v| v > 1e6), "corruption present");
    let c = cluster();
    let d = dgreedy_abs(
        &c,
        &data,
        b,
        &DGreedyAbsConfig {
            base_leaves: 1 << 8,
            bucket_width: 1.0,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    assert!(d.synopsis.size() <= b);
    let actual = max_abs(&data, &d.synopsis.reconstruct_all());
    assert!(
        (actual - d.estimated_error).abs() <= 1.0 + actual * 1e-9,
        "estimate {} vs actual {actual}",
        d.estimated_error
    );
}

#[test]
fn degenerate_shapes() {
    let c = cluster();
    // Constant data: one coefficient suffices everywhere.
    let data = vec![7.5; 64];
    let d = dgreedy_abs(
        &c,
        &data,
        1,
        &DGreedyAbsConfig {
            base_leaves: 8,
            bucket_width: 1e-9,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    let err = max_abs(&data, &d.synopsis.reconstruct_all());
    assert!(err < 1e-9, "constant data should be free: {err}");

    // Single spike.
    let mut spike = vec![0.0; 64];
    spike[33] = 1000.0;
    let d = dgreedy_abs(
        &c,
        &spike,
        8,
        &DGreedyAbsConfig {
            base_leaves: 8,
            bucket_width: 1e-9,
            reducers: 2,
            max_candidates: None,
        },
    )
    .unwrap();
    let err = max_abs(&spike, &d.synopsis.reconstruct_all());
    assert!(
        err < 1e-9,
        "a spike needs log N + 1 = 7 <= 8 coefficients: {err}"
    );
}
