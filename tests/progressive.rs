//! Acceptance tests for phased execution and incremental maintenance
//! (the progressive serving layer).
//!
//! Three guarantees are pinned here:
//!
//! 1. **Golden digest** — the phased driver's *final* (background) synopsis
//!    is bit-identical to a one-shot `dgreedy_abs` build of the same
//!    window, on both spill backends, with and without injected faults.
//! 2. **Proportional work** — after appending ≤ 1/16 of the window, the
//!    background refinement re-runs map tasks proportional to the dirty
//!    subtrees (far fewer than a full rebuild), verified through
//!    `TickReport` counters, phase-tagged `DriverMetrics`, and the trace.
//! 3. **Incremental ≡ from-scratch** — property tests drive random
//!    append/slide schedules (power-of-two fills and ragged zero-padded
//!    tails alike) and require the incrementally maintained CON and
//!    DGreedyAbs synopses to equal from-scratch builds bit for bit.

use std::time::Duration;

use dwmaxerr::core::conventional::con;
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::progressive::{
    IncrementalConventional, IncrementalDGreedyAbs, PhasedSynopsisDriver, StreamWindow,
};
use dwmaxerr::runtime::trace::{self, summary};
use dwmaxerr::runtime::{
    Cluster, ClusterConfig, FaultPlan, Phase, Pipeline, SpillBackend, TaskPhase,
};
use dwmaxerr::wavelet::Synopsis;
use proptest::prelude::*;

const N: usize = 256;
const BASE: usize = 16; // 16 bases of 16 leaves

fn cluster_on(backend: SpillBackend, plan: Option<FaultPlan>) -> Cluster {
    let mut cfg = ClusterConfig::with_slots(4, 2);
    cfg.task_startup = Duration::from_millis(1);
    cfg.job_setup = Duration::from_millis(1);
    cfg.spill_backend = backend;
    cfg.fault_plan = plan;
    Cluster::new(cfg)
}

fn dg_cfg() -> DGreedyAbsConfig {
    DGreedyAbsConfig {
        base_leaves: BASE,
        bucket_width: 1e-9,
        reducers: 2,
        max_candidates: None,
    }
}

/// Integer-valued workload: float sums are exact regardless of
/// association, so a mean-preserving overwrite reproduces the base
/// average bit for bit.
fn int_data(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(2_862_933_555) ^ seed) % 97)
        .map(|v| v as f64)
        .collect()
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn syn_digest(s: &Synopsis) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(i, v) in s.entries() {
        fnv1a(&mut h, &i.to_le_bytes());
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

fn hostile_plan() -> FaultPlan {
    FaultPlan::seeded(23)
        .with_failure_prob(0.12)
        .with_straggler(TaskPhase::Map, 0, 5.0)
        .with_straggler(TaskPhase::Map, 2, 3.0)
}

/// Satellite 1: the phased path's final synopsis is bit-identical to a
/// one-shot DGreedyAbs build — on both spill backends, clean and under
/// injected faults — and every produced trace validates.
#[test]
fn phased_final_synopsis_matches_one_shot_on_both_backends() {
    let data = int_data(N, 41);
    let budget = N / 8;
    let reference = dgreedy_abs(
        &cluster_on(SpillBackend::Memory, None),
        &data,
        budget,
        &dg_cfg(),
    )
    .unwrap();
    let golden = syn_digest(&reference.synopsis);

    for backend in [SpillBackend::Memory, SpillBackend::Disk] {
        for plan in [None, Some(hostile_plan())] {
            let faulty = plan.is_some();
            let cluster = cluster_on(backend, plan);
            let mut driver = PhasedSynopsisDriver::new(N, budget, &dg_cfg()).unwrap();
            let report = driver.tick(&cluster, &data).unwrap();
            let latest = driver.latest().unwrap();
            assert!(latest.value.exact, "{backend:?} faulty={faulty}");
            assert_eq!(
                syn_digest(&latest.value.synopsis),
                golden,
                "final synopsis diverged on {backend:?} faulty={faulty}"
            );
            assert_eq!(
                latest.value.guaranteed_error,
                Some(reference.estimated_error),
                "{backend:?} faulty={faulty}"
            );
            assert!(report.staleness_secs > 0.0);
            let events = cluster.trace().snapshot();
            trace::validate(&events)
                .unwrap_or_else(|e| panic!("trace invalid on {backend:?} faulty={faulty}: {e}"));
        }
    }
}

/// Acceptance: appending 1/16 of the window (one of 16 base slices,
/// mean-preserving so the root configuration is stable) re-runs map
/// tasks proportional to the single dirty subtree — an order of
/// magnitude below the full rebuild — while the final synopsis stays
/// bit-identical to a one-shot build of the updated window.
#[test]
fn incremental_tick_work_is_proportional_to_dirty_subtrees() {
    let cluster = cluster_on(SpillBackend::from_env(), None);
    let data = int_data(N, 7);
    let budget = N / 8;
    let mut driver = PhasedSynopsisDriver::new(N, budget, &dg_cfg()).unwrap();

    // Tick 1: full build, every base dirty.
    let full = driver.tick(&cluster, &data).unwrap();
    assert_eq!(full.dirty_bases, N / BASE);
    assert!(full.background_tasks >= 3 * (N / BASE) - 2);

    // Tick 2: overwrite exactly one base slice (1/16 of the window) with
    // new values of identical integer sum — the averages, and therefore
    // the root configuration and every clean base's incoming error, are
    // reproduced bit for bit.
    let old = &data[..BASE];
    let sum: f64 = old.iter().sum();
    let mut fresh: Vec<f64> = (0..BASE - 1).map(|i| ((i * 13) % 29) as f64).collect();
    fresh.push(sum - fresh.iter().sum::<f64>());
    let inc = driver.tick(&cluster, &fresh).unwrap();
    assert_eq!(inc.dirty_bases, 1);

    // Proportional work: one averages task + one errhist task + one
    // synopsis task for the dirty base. The full rebuild ran ~3R tasks.
    assert!(
        inc.background_tasks <= 3,
        "incremental tick ran {} background map tasks (full rebuild: {})",
        inc.background_tasks,
        full.background_tasks
    );
    assert!(inc.background_tasks * 8 <= full.background_tasks);
    assert!(inc.greedy_runs <= full.greedy_runs / 8);
    assert_eq!(inc.foreground_tasks, 1);

    // Phase-tagged metrics agree with the counters.
    let phases = inc.metrics.per_phase();
    let bg = phases
        .iter()
        .find(|p| p.phase == Some(Phase::Background(0)))
        .expect("background phase recorded");
    assert_eq!(bg.map_tasks, inc.background_tasks);

    // Bit-identity: the served exact synopsis equals a one-shot build of
    // the updated window.
    let reference = dgreedy_abs(
        &cluster_on(SpillBackend::Memory, None),
        driver.window().data(),
        budget,
        &dg_cfg(),
    )
    .unwrap();
    let latest = driver.latest().unwrap();
    assert_eq!(
        syn_digest(&latest.value.synopsis),
        syn_digest(&reference.synopsis)
    );
    assert_eq!(
        latest.value.guaranteed_error.unwrap().to_bits(),
        reference.estimated_error.to_bits()
    );

    // The trace tells the same story: two ticks → four publishes with
    // monotone versions, phased spans, and a positive refinement lag.
    let events = cluster.trace().snapshot();
    trace::validate(&events).unwrap();
    let publishes = summary::snapshot_publishes(&events);
    assert_eq!(publishes.len(), 4);
    assert_eq!(
        publishes.iter().map(|p| p.version).collect::<Vec<_>>(),
        vec![1, 2, 3, 4]
    );
    let lags = summary::refinement_lags(&events);
    assert!(lags.iter().all(|l| l.secs > 0.0));
    assert!(!summary::phase_spans(&events).is_empty());
}

/// Arbitrary window shape plus an append schedule: initial fill length
/// (possibly ragged), then 1..4 appends of 1..=2·BASE values each.
fn append_schedule() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>)> {
    let n = 64usize;
    (1usize..=n).prop_flat_map(move |fill| {
        (
            prop::collection::vec(-100.0..100.0f64, fill..=fill),
            prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 1..=16), 1..=3),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Satellite 2 (exact path): after every random append/slide the
    // incremental DGreedyAbs equals a from-scratch build bit for bit —
    // coefficient set and guaranteed error alike — through ragged
    // zero-padded prefixes and full ring wrap-around.
    #[test]
    fn incremental_dgreedy_equals_from_scratch((fill, appends) in append_schedule()) {
        let n = 64;
        let cfg = DGreedyAbsConfig { base_leaves: 8, bucket_width: 1e-9, reducers: 2, max_candidates: None };
        let cluster = cluster_on(SpillBackend::from_env(), None);
        let mut window = StreamWindow::new(n, 8).unwrap();
        let mut inc = IncrementalDGreedyAbs::new(n, 12, &cfg).unwrap();
        window.push(&fill);
        for chunk in std::iter::once(Vec::new()).chain(appends) {
            window.push(&chunk);
            for j in window.take_dirty_bases() {
                inc.invalidate(j);
            }
            let (pipe, up) = inc.update(Pipeline::on(&cluster), window.data()).unwrap();
            let _ = pipe.into_metrics();
            let batch = dgreedy_abs(
                &cluster_on(SpillBackend::Memory, None),
                window.data(),
                12,
                &cfg,
            ).unwrap();
            prop_assert_eq!(up.synopsis.entries(), batch.synopsis.entries());
            prop_assert_eq!(up.estimated_error.to_bits(), batch.estimated_error.to_bits());
            prop_assert_eq!(up.best_croot_size, batch.best_croot_size);
        }
    }

    // Satellite 2 (coarse path): the incrementally maintained CON
    // synopsis equals a from-scratch `con` run after every append.
    #[test]
    fn incremental_conventional_equals_from_scratch((fill, appends) in append_schedule()) {
        let n = 64;
        let cluster = cluster_on(SpillBackend::from_env(), None);
        let mut window = StreamWindow::new(n, 8).unwrap();
        let mut inc = IncrementalConventional::new(n, 12, 8).unwrap();
        window.push(&fill);
        for chunk in std::iter::once(Vec::new()).chain(appends) {
            window.push(&chunk);
            for j in window.take_dirty_bases() {
                inc.invalidate(j);
            }
            let (pipe, up) = inc.update(Pipeline::on(&cluster), window.data()).unwrap();
            let _ = pipe.into_metrics();
            let (batch, _) = con(&cluster_on(SpillBackend::Memory, None), window.data(), 12, 8).unwrap();
            prop_assert_eq!(up.synopsis.entries(), batch.entries());
        }
    }
}
