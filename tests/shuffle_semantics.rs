//! Cross-path shuffle guarantees, pinned at the workspace level: the
//! sort-merge shuffle (the default) and the global-sort reference path must
//! be observationally indistinguishable on the same job —
//!
//! * identical output pair streams (grouping, order, bit patterns),
//! * identical shuffle-byte and record accounting, in [`JobMetrics`] and in
//!   the `shuffle_partition` trace events,
//! * sort-merge populates its extra observability (per-map spill runs,
//!   per-reduce merge fan-in) while the reference path leaves it empty,
//! * traces from both paths pass [`trace::validate`].

use dwmaxerr::runtime::trace::{self, TraceEvent, TraceEventKind};
use dwmaxerr::runtime::{Cluster, ClusterConfig, JobBuilder, ShufflePath, SpillBackend};
use dwmaxerr::runtime::{JobOutput, MapContext, ReduceContext};

/// Backend comes from `DWM_SPILL_BACKEND` (default memory) so a CI leg
/// can replay the whole suite against the on-disk spill store.
fn quiet_cluster() -> Cluster {
    let mut cfg = ClusterConfig::with_slots(4, 3);
    cfg.task_startup = std::time::Duration::ZERO;
    cfg.job_setup = std::time::Duration::ZERO;
    cfg.spill_backend = SpillBackend::from_env();
    Cluster::new(cfg)
}

/// Runs a word-count-shaped job (skewed keys, one empty split, optional
/// combiner) on the given path; returns the output and the trace events.
fn run_job(path: ShufflePath, combine: bool) -> (JobOutput<u64, f64>, Vec<TraceEvent>) {
    let cluster = quiet_cluster();
    // Skewed: key 0 dominates, some keys unique, split 2 empty.
    let splits: Vec<Vec<u64>> = vec![
        vec![0, 0, 0, 5, 9, 0, 3],
        vec![0, 3, 3, 7, 0],
        vec![],
        vec![11, 0, 5],
    ];
    let mut stage = JobBuilder::new("shufsem")
        .map(|split: &Vec<u64>, ctx: &mut MapContext<u64, f64>| {
            for &x in split {
                ctx.emit(x, x as f64 + 0.5);
            }
        })
        .reducers(3)
        .shuffle_path(path);
    if combine {
        stage = stage.combine_with(|_k, vals: &mut dyn Iterator<Item = f64>| vals.sum());
    }
    let out = stage
        .reduce(|k, vals, ctx: &mut ReduceContext<u64, f64>| ctx.emit(*k, vals.sum()))
        .run(&cluster, &splits)
        .expect("job succeeds");
    (out, cluster.trace_events())
}

/// Extracts (partition, bytes) for each shuffle_partition event.
fn partition_bytes(events: &[TraceEvent]) -> Vec<(usize, u64)> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::ShufflePartition {
                partition, bytes, ..
            } => Some((*partition, *bytes)),
            _ => None,
        })
        .collect()
}

#[test]
fn both_paths_produce_identical_output_and_accounting() {
    for combine in [false, true] {
        let (merge, merge_events) = run_job(ShufflePath::SortMerge, combine);
        let (reference, ref_events) = run_job(ShufflePath::GlobalSort, combine);

        let bits = |out: &JobOutput<u64, f64>| -> Vec<(u64, u64)> {
            out.pairs.iter().map(|&(k, v)| (k, v.to_bits())).collect()
        };
        assert_eq!(bits(&merge), bits(&reference), "combine={combine}");
        assert_eq!(merge.metrics.shuffle_bytes, reference.metrics.shuffle_bytes);
        assert_eq!(
            merge.metrics.shuffle_records,
            reference.metrics.shuffle_records
        );
        // Per-partition shuffle bytes in the trace agree too.
        assert_eq!(partition_bytes(&merge_events), partition_bytes(&ref_events));
    }
}

#[test]
fn sort_merge_reports_spills_and_fan_in_reference_does_not() {
    let (merge, merge_events) = run_job(ShufflePath::SortMerge, false);
    let (reference, _) = run_job(ShufflePath::GlobalSort, false);

    // One spill-run count per map task; one fan-in per reducer.
    assert_eq!(merge.metrics.spill_runs.len(), 4);
    assert_eq!(merge.metrics.merge_fan_in.len(), 3);
    assert_eq!(merge.metrics.spill_secs.len(), 4);
    assert_eq!(merge.metrics.merge_secs.len(), 3);
    // The empty split produced zero runs; the others at least one.
    assert_eq!(merge.metrics.spill_runs[2], 0);
    assert!(merge.metrics.spill_runs.iter().sum::<u64>() > 0);
    // Fan-in totals match: every non-empty run lands on exactly one reducer.
    assert_eq!(
        merge.metrics.merge_fan_in.iter().sum::<u64>(),
        merge.metrics.spill_runs.iter().sum::<u64>()
    );

    // Reference path: no spill/fan-in observability (but merge_secs is
    // still measured — it times the reference sort there).
    assert!(reference.metrics.spill_runs.is_empty());
    assert!(reference.metrics.merge_fan_in.is_empty());
    assert!(reference.metrics.spill_secs.is_empty());
    assert_eq!(reference.metrics.merge_secs.len(), 3);

    // Trace events carry the same fan-in as the metrics.
    let trace_runs: Vec<u64> = merge_events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::ShufflePartition { runs, .. } => Some(*runs),
            _ => None,
        })
        .collect();
    assert_eq!(trace_runs, merge.metrics.merge_fan_in);
}

#[test]
fn traces_from_both_paths_validate() {
    for path in [ShufflePath::SortMerge, ShufflePath::GlobalSort] {
        for combine in [false, true] {
            let (_, events) = run_job(path, combine);
            trace::validate(&events).expect("trace validates");
        }
    }
}

#[test]
fn tie_order_matches_reference_under_duplicate_heavy_input() {
    // Every split emits the same few keys many times: groups span every
    // run, so the k-way merge's tie-break (run index = map task order) is
    // fully exercised. Values encode (split, position) so any reordering
    // relative to the reference path changes the observed value stream.
    let splits: Vec<Vec<(u64, u64)>> = (0..5)
        .map(|s| (0..30).map(|i| (i % 3, s * 1000 + i)).collect())
        .collect();
    let run = |path: ShufflePath| {
        let cluster = quiet_cluster();
        JobBuilder::new("ties")
            .map(|split: &Vec<(u64, u64)>, ctx: &mut MapContext<u64, u64>| {
                for &(k, v) in split {
                    ctx.emit(k, v);
                }
            })
            .reducers(2)
            .shuffle_path(path)
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, u64>| {
                // Emit each value so intra-group order is observable.
                for v in vals {
                    ctx.emit(*k, v);
                }
            })
            .run(&cluster, &splits)
            .expect("job succeeds")
            .pairs
    };
    assert_eq!(run(ShufflePath::SortMerge), run(ShufflePath::GlobalSort));
}

#[test]
fn constrained_memory_runs_externally_and_stays_bit_identical() {
    // The acceptance scenario for the external shuffle: with the spill
    // budget far below a map task's working set, the job must complete via
    // multi-run external spills (no TaskFailed), report >1 spill pass per
    // non-empty task and intermediate merge passes when fan-in < run
    // count, and produce byte-identical output to the unconstrained run.
    let splits: Vec<Vec<(u64, u64)>> = (0..5)
        .map(|s| (0..120).map(|i| (i % 9, s * 1000 + i)).collect())
        .collect();
    let run = |constrain: bool, backend: SpillBackend| {
        let mut cfg = ClusterConfig::with_slots(4, 3);
        cfg.task_startup = std::time::Duration::ZERO;
        cfg.job_setup = std::time::Duration::ZERO;
        if constrain {
            cfg.io_sort_bytes = 200; // 16-byte pairs: spill every ~12 emits
            cfg.io_sort_factor = 2;
            cfg.spill_backend = backend;
        }
        let cluster = Cluster::new(cfg);
        let out = JobBuilder::new("pressure")
            .map(|split: &Vec<(u64, u64)>, ctx: &mut MapContext<u64, u64>| {
                for &(k, v) in split {
                    ctx.emit(k, v);
                }
            })
            .reducers(3)
            .reduce(|k, vals, ctx: &mut ReduceContext<u64, u64>| {
                for v in vals {
                    ctx.emit(*k, v);
                }
            })
            .run(&cluster, &splits)
            .expect("constrained job completes instead of failing");
        (out, cluster.trace_events())
    };

    let (unconstrained, _) = run(false, SpillBackend::Memory);
    assert_eq!(unconstrained.metrics.disk_spill_bytes, 0);
    for backend in [SpillBackend::Memory, SpillBackend::Disk] {
        let (constrained, events) = run(true, backend);
        assert_eq!(constrained.pairs, unconstrained.pairs, "{backend:?}");
        assert_eq!(
            constrained.metrics.shuffle_bytes,
            unconstrained.metrics.shuffle_bytes
        );
        // Every task crossed the budget repeatedly...
        assert!(constrained.metrics.spill_passes.iter().all(|&p| p > 1));
        assert!(constrained
            .metrics
            .spill_runs
            .iter()
            .zip(&unconstrained.metrics.spill_runs)
            .all(|(&c, &u)| c > u));
        // ...and fan-in 2 forced intermediate merge passes everywhere.
        assert!(constrained.metrics.merge_passes.iter().all(|&p| p >= 1));
        assert!(constrained.metrics.disk_spill_bytes > 0);
        assert!(constrained.metrics.disk_merge_bytes > 0);
        // The timeline records the spill/merge story and still validates.
        trace::validate(&events).expect("constrained trace validates");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Spill { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::MergePass { .. })));
    }
}
