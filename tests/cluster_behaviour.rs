//! Integration tests of the simulated-cluster behaviour that the paper's
//! scalability figures depend on.

use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::datagen::synthetic::uniform;
use dwmaxerr::runtime::{Cluster, ClusterConfig, JobBuilder, MapContext, ReduceContext};

fn cluster_with_slots(map: usize, reduce: usize) -> Cluster {
    let mut cfg = ClusterConfig::with_slots(map, reduce);
    // Keep fixed overheads tiny relative to the busy-work below so the
    // wave structure dominates the simulated makespan.
    cfg.task_startup = std::time::Duration::from_micros(20);
    cfg.job_setup = std::time::Duration::from_micros(20);
    Cluster::new(cfg)
}

/// A map phase whose per-task cost is dominated by a *deterministic*
/// simulated HDFS read (1 MiB per split), so wave-structure assertions are
/// immune to host timing noise while still exercising the full pipeline.
fn busy_job(cluster: &Cluster, tasks: usize) -> f64 {
    let splits: Vec<u64> = (0..tasks as u64).collect();
    let out = JobBuilder::new("busy")
        .map(|seed: &u64, ctx: &mut MapContext<u8, u64>| {
            ctx.emit(0, *seed);
        })
        .input_bytes(|_| 1 << 20)
        .reduce(|_k, vals, ctx: &mut ReduceContext<u8, u64>| {
            ctx.emit(0, vals.count() as u64);
        })
        .run(cluster, &splits)
        .unwrap();
    // Use only the map-phase makespan: it is the wave-structured quantity.
    out.metrics.sim.map
}

#[test]
fn halving_slots_scales_simulated_time() {
    // Figure 5c/5d's resource scaling: with tasks >> slots, halving the
    // map slots roughly doubles the simulated makespan.
    let tasks = 32;
    let t8 = busy_job(&cluster_with_slots(8, 2), tasks);
    let t4 = busy_job(&cluster_with_slots(4, 2), tasks);
    let ratio = t4 / t8;
    assert!(
        (1.6..=2.6).contains(&ratio),
        "halving slots gave ratio {ratio} (t8={t8}, t4={t4})"
    );
}

#[test]
fn saturation_then_linear_growth() {
    // "Running-time is almost constant at first, when all data can be
    // processed fully in parallel, and is linearly growing as the cluster
    // is fully utilized."
    let c = cluster_with_slots(8, 2);
    let t4 = busy_job(&c, 4); // under-utilized
    let t8 = busy_job(&c, 8); // exactly one wave
    let t32 = busy_job(&c, 32); // four waves
    assert!(
        t8 / t4 < 1.6,
        "sub-saturation should be ~flat: {t4} -> {t8}"
    );
    assert!(
        (2.8..=5.5).contains(&(t32 / t8)),
        "4 waves should cost ~4x one wave: {}",
        t32 / t8
    );
}

#[test]
fn tiny_partitions_pay_startup_overhead() {
    // The Figure-5a lower end: very small sub-trees mean many tasks, and
    // per-task startup dominates.
    let n = 1 << 12;
    let data = uniform(n, 1000.0, 17);
    let b = n / 8;
    let sim_of = |s: usize| {
        let c = cluster_with_slots(8, 4);
        let cfg = DGreedyAbsConfig {
            base_leaves: s,
            bucket_width: 0.5,
            reducers: 2,
            max_candidates: None,
        };
        dgreedy_abs(&c, &data, b, &cfg)
            .unwrap()
            .metrics
            .total_simulated()
            .secs()
    };
    let tiny = sim_of(8); // 512 tasks/job
    let good = sim_of(1 << 9); // 8 tasks/job
    assert!(
        tiny > good * 2.0,
        "tiny partitions should be slower: tiny={tiny}, good={good}"
    );
}

#[test]
fn shuffle_bytes_scale_with_data() {
    let sizes = [1usize << 10, 1 << 12];
    let mut bytes = Vec::new();
    for &n in &sizes {
        let data = uniform(n, 1000.0, 23);
        let c = cluster_with_slots(8, 4);
        let cfg = DGreedyAbsConfig {
            base_leaves: n / 8,
            bucket_width: 0.5,
            reducers: 2,
            max_candidates: None,
        };
        let d = dgreedy_abs(&c, &data, n / 8, &cfg).unwrap();
        bytes.push(d.metrics.total_shuffle_bytes());
    }
    // 4x the data should produce within ~an order of magnitude more
    // shuffle, not explode quadratically (histogram compression works).
    let ratio = bytes[1] as f64 / bytes[0] as f64;
    assert!(
        (1.5..=16.0).contains(&ratio),
        "shuffle scaling ratio {ratio}: {bytes:?}"
    );
}

#[test]
fn job_history_ledger_records_everything() {
    let c = cluster_with_slots(4, 2);
    let n = 1 << 10;
    let data = uniform(n, 100.0, 5);
    let cfg = DGreedyAbsConfig {
        base_leaves: 1 << 7,
        bucket_width: 0.5,
        reducers: 2,
        max_candidates: None,
    };
    let d = dgreedy_abs(&c, &data, n / 8, &cfg).unwrap();
    let history = c.history();
    assert_eq!(history.len(), d.metrics.job_count());
    assert!(history.iter().any(|j| j.name.contains("errhist")));
    assert!(history.iter().any(|j| j.name.contains("averages")));
    assert!(history.iter().any(|j| j.name.contains("synopsis")));
}
