//! `dwm` — command-line wavelet synopses.
//!
//! ```text
//! dwm gen    --kind nyct --n 65536 --out data.csv [--seed 1]
//! dwm build  --input data.csv --budget 8192 --algo dgreedy-abs --out syn.csv
//! dwm eval   --input data.csv --synopsis syn.csv [--sanity 1.0]
//! dwm query  --synopsis syn.csv --point 42
//! dwm query  --synopsis syn.csv --range 100 900
//! ```
//!
//! Data files hold one value per line; synopsis files are
//! `node,value` CSV with a `# dwmaxerr-synopsis n=<N>` header.

use std::collections::HashMap;
use std::io::{BufRead, BufWriter, Write};
use std::process::ExitCode;

use dwmaxerr::algos::indirect_haar::indirect_haar_centralized;
use dwmaxerr::algos::{conventional_synopsis, greedy_abs_synopsis, greedy_rel_synopsis};
use dwmaxerr::core::dgreedy_abs::{dgreedy_abs, DGreedyAbsConfig};
use dwmaxerr::core::dindirect_haar::{dindirect_haar, DIndirectHaarConfig};
use dwmaxerr::datagen;
use dwmaxerr::runtime::{Cluster, ClusterConfig};
use dwmaxerr::wavelet::reconstruct::range_sum_synopsis;
use dwmaxerr::wavelet::transform::{forward, pad_to_pow2};
use dwmaxerr::wavelet::{metrics, Synopsis};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  dwm gen   --kind nyct|wd|uniform|zipf --n <N> --out <file>
            [--seed <u64>] [--max <float>] [--theta <float>]
  dwm build --input <file> --budget <B> --algo <algo> --out <file>
            [--delta <float>] [--sanity <float>]
    algos: conventional | greedy-abs | greedy-rel | indirect-haar |
           dgreedy-abs | dindirect-haar
  dwm eval  --input <file> --synopsis <file> [--sanity <float>]
  dwm query --synopsis <file> (--point <i> | --range <lo> <hi>)";

type CliError = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "build" => cmd_build(&flags),
        "eval" => cmd_eval(&flags),
        "query" => cmd_query(&flags),
        other => Err(format!("unknown subcommand `{other}`").into()),
    }
}

/// Parses `--name value [value]` flags.
fn parse_flags(args: &[String]) -> Result<HashMap<String, Vec<String>>, CliError> {
    let mut flags: HashMap<String, Vec<String>> = HashMap::new();
    let mut current: Option<String> = None;
    for a in args {
        if let Some(name) = a.strip_prefix("--") {
            current = Some(name.to_string());
            flags.entry(name.to_string()).or_default();
        } else if let Some(name) = &current {
            flags.get_mut(name).expect("inserted").push(a.clone());
        } else {
            return Err(format!("unexpected argument `{a}`").into());
        }
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, Vec<String>>, name: &str) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .and_then(|v| v.first())
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}").into())
}

fn get_or<'a>(flags: &'a HashMap<String, Vec<String>>, name: &str, default: &'a str) -> &'a str {
    flags
        .get(name)
        .and_then(|v| v.first())
        .map(String::as_str)
        .unwrap_or(default)
}

fn cmd_gen(flags: &HashMap<String, Vec<String>>) -> Result<(), CliError> {
    let kind = get(flags, "kind")?;
    let n: usize = get(flags, "n")?.parse()?;
    let out = get(flags, "out")?;
    let seed: u64 = get_or(flags, "seed", "42").parse()?;
    let data = match kind {
        "nyct" => datagen::nyct_like(n, 0.0, seed),
        "wd" => datagen::wd_like(n, 2e-4, seed),
        "uniform" => {
            let max: f64 = get_or(flags, "max", "1000").parse()?;
            datagen::synthetic::uniform(n, max, seed)
        }
        "zipf" => {
            let max: f64 = get_or(flags, "max", "1000").parse()?;
            let theta: f64 = get_or(flags, "theta", "0.7").parse()?;
            datagen::synthetic::zipf(n, max, theta, seed)
        }
        other => return Err(format!("unknown --kind `{other}`").into()),
    };
    let mut w = BufWriter::new(std::fs::File::create(out)?);
    for v in &data {
        writeln!(w, "{v}")?;
    }
    eprintln!("wrote {} values to {out}", data.len());
    Ok(())
}

fn read_data(path: &str) -> Result<Vec<f64>, CliError> {
    let file = std::fs::File::open(path)?;
    let mut data = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        data.push(
            t.parse::<f64>()
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
        );
    }
    if data.is_empty() {
        return Err(format!("{path}: no data").into());
    }
    Ok(data)
}

fn write_synopsis(path: &str, syn: &Synopsis) -> Result<(), CliError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# dwmaxerr-synopsis n={}", syn.data_len())?;
    for &(node, value) in syn.entries() {
        writeln!(w, "{node},{value}")?;
    }
    Ok(())
}

fn read_synopsis(path: &str) -> Result<Synopsis, CliError> {
    let file = std::fs::File::open(path)?;
    let mut n: Option<usize> = None;
    let mut entries = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        let t = line.trim();
        if let Some(header) = t.strip_prefix("# dwmaxerr-synopsis n=") {
            n = Some(header.trim().parse()?);
            continue;
        }
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let (node, value) = t
            .split_once(',')
            .ok_or_else(|| format!("bad synopsis line: {t}"))?;
        entries.push((node.trim().parse()?, value.trim().parse()?));
    }
    let n = n.ok_or("synopsis file missing `# dwmaxerr-synopsis n=` header")?;
    Ok(Synopsis::from_entries(n, entries)?)
}

fn cmd_build(flags: &HashMap<String, Vec<String>>) -> Result<(), CliError> {
    let raw = read_data(get(flags, "input")?)?;
    let original_len = raw.len();
    let data = pad_to_pow2(&raw);
    if data.len() != original_len {
        eprintln!(
            "note: padded {original_len} values to {} (power of two) by repeating the last value",
            data.len()
        );
    }
    let b: usize = get(flags, "budget")?.parse()?;
    let algo = get(flags, "algo")?;
    let out = get(flags, "out")?;
    let delta: f64 = get_or(flags, "delta", "1").parse()?;
    let sanity: f64 = get_or(flags, "sanity", "1").parse()?;

    let start = std::time::Instant::now();
    let syn = match algo {
        "conventional" => conventional_synopsis(&forward(&data)?, b)?,
        "greedy-abs" => greedy_abs_synopsis(&forward(&data)?, b)?.0,
        "greedy-rel" => greedy_rel_synopsis(&forward(&data)?, &data, b, sanity)?.0,
        "indirect-haar" => indirect_haar_centralized(&data, b, delta)?.synopsis,
        "dgreedy-abs" => {
            let cluster = Cluster::new(ClusterConfig::default());
            let cfg = DGreedyAbsConfig {
                base_leaves: (data.len() / 32).max(2),
                ..DGreedyAbsConfig::default()
            };
            let res = dgreedy_abs(&cluster, &data, b, &cfg)?;
            eprintln!(
                "simulated cluster time: {} across {} jobs",
                res.metrics.total_simulated(),
                res.metrics.job_count()
            );
            res.synopsis
        }
        "dindirect-haar" => {
            let cluster = Cluster::new(ClusterConfig::default());
            let mut cfg = DIndirectHaarConfig {
                delta,
                ..DIndirectHaarConfig::default()
            };
            cfg.probe.base_leaves = (data.len() / 32).max(2);
            let res = dindirect_haar(&cluster, &data, b, &cfg)?;
            eprintln!(
                "simulated cluster time: {} across {} probes",
                res.metrics.total_simulated(),
                res.probes
            );
            res.synopsis
        }
        other => return Err(format!("unknown --algo `{other}`").into()),
    };
    let elapsed = start.elapsed();
    let report = metrics::evaluate(&data, &syn, sanity);
    write_synopsis(out, &syn)?;
    eprintln!(
        "built {algo} synopsis: {} coefficients ({}x compression) in {:.2}s",
        syn.size(),
        data.len() / syn.size().max(1),
        elapsed.as_secs_f64()
    );
    eprintln!(
        "max_abs={:.4} max_rel={:.4} L2={:.4} -> {out}",
        report.max_abs, report.max_rel, report.l2
    );
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, Vec<String>>) -> Result<(), CliError> {
    let data = pad_to_pow2(&read_data(get(flags, "input")?)?);
    let syn = read_synopsis(get(flags, "synopsis")?)?;
    if syn.data_len() != data.len() {
        return Err(format!(
            "synopsis is for n={} but input has n={}",
            syn.data_len(),
            data.len()
        )
        .into());
    }
    let sanity: f64 = get_or(flags, "sanity", "1").parse()?;
    let report = metrics::evaluate(&data, &syn, sanity);
    println!("coefficients: {}", syn.size());
    println!("max_abs:      {:.6}", report.max_abs);
    println!("max_rel:      {:.6}", report.max_rel);
    println!("l2:           {:.6}", report.l2);
    Ok(())
}

fn cmd_query(flags: &HashMap<String, Vec<String>>) -> Result<(), CliError> {
    let syn = read_synopsis(get(flags, "synopsis")?)?;
    if let Some(points) = flags.get("point") {
        let i: usize = points.first().ok_or("missing value for --point")?.parse()?;
        if i >= syn.data_len() {
            return Err(format!("point {i} out of range (n={})", syn.data_len()).into());
        }
        println!("{}", syn.reconstruct_value(i));
        return Ok(());
    }
    if let Some(range) = flags.get("range") {
        let [lo, hi] = range.as_slice() else {
            return Err("--range needs two values".into());
        };
        let (lo, hi): (usize, usize) = (lo.parse()?, hi.parse()?);
        if lo > hi || hi >= syn.data_len() {
            return Err(format!("bad range {lo}..{hi} (n={})", syn.data_len()).into());
        }
        println!("{}", range_sum_synopsis(&syn, lo, hi));
        return Ok(());
    }
    Err("query needs --point or --range".into())
}
