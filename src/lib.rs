//! # dwmaxerr — Distributed Wavelet Thresholding for Maximum Error Metrics
//!
//! A Rust reproduction of the SIGMOD 2016 paper by Mytilinis, Tsoumakos and
//! Koziris. This facade crate re-exports the whole workspace so downstream
//! users depend on a single crate:
//!
//! * [`wavelet`] — Haar transform, error trees, synopses, error metrics.
//! * [`runtime`] — the in-process mini-MapReduce engine (the paper's
//!   Hadoop substitute).
//! * [`algos`] — centralized thresholding algorithms: GreedyAbs, GreedyRel,
//!   MinHaarSpace, IndirectHaar and the conventional L2 scheme.
//! * [`core`] — the paper's contribution: the DP-parallelisation framework,
//!   DGreedyAbs / DGreedyRel, DIndirectHaar, and the conventional-synopsis
//!   baselines CON, Send-V, Send-Coef and H-WTopk.
//! * [`datagen`] — synthetic and real-dataset-surrogate workload
//!   generators.
//! * [`serve`] — the sharded synopsis-serving query layer: lock-free
//!   point/range-sum reads with guaranteed error bounds, batched
//!   execution, and atomic store swap on rebuild.
//!
//! ## Quickstart
//!
//! ```
//! use dwmaxerr::wavelet::transform::forward;
//!
//! let data = vec![5.0, 5.0, 0.0, 26.0, 1.0, 3.0, 14.0, 2.0];
//! let coeffs = forward(&data).unwrap();
//! assert_eq!(coeffs[0], 7.0); // overall average
//! ```

pub use dwmaxerr_algos as algos;
pub use dwmaxerr_core as core;
pub use dwmaxerr_datagen as datagen;
pub use dwmaxerr_runtime as runtime;
pub use dwmaxerr_serve as serve;
pub use dwmaxerr_wavelet as wavelet;
